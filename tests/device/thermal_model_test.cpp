// Device-model temperature behaviour over the thermal sweep range
// (233-398 K): the monotonicity and continuity properties the thermal
// subsystem's continuation warm starts and model fits rely on, plus the
// compile-at-T equivalence that underpins coefficient re-binding.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "device/compiled_model.h"
#include "device/device_params.h"
#include "device/mosfet.h"

namespace nanoleak::device {
namespace {

constexpr double kTMin = 233.0;
constexpr double kTMax = 398.0;
constexpr double kTStep = 5.0;

struct Flavour {
  std::string name;
  Technology tech;
};

std::vector<Flavour> flavours() {
  return {{"d25s", defaultTechnology()},
          {"d25g", gateDominatedTechnology()},
          {"d25jn", btbtDominatedTechnology()}};
}

/// The worst-case OFF bias of an NMOS pull-down: gate and source at
/// ground, drain at VDD - all three leakage mechanisms active.
BiasPoint nmosOffBias(const Technology& tech) {
  return {0.0, tech.vdd, 0.0, 0.0};
}

/// The complementary OFF bias of a PMOS pull-up.
BiasPoint pmosOffBias(const Technology& tech) {
  return {tech.vdd, 0.0, tech.vdd, tech.vdd};
}

LeakageBreakdown leakAt(const DeviceParams& params, double width,
                        const BiasPoint& bias, double temperature_k) {
  const Mosfet mosfet(params, width);
  return mosfet.leakage(bias, Environment{temperature_k});
}

void checkMonotonicityAndContinuity(const std::string& label,
                                    const DeviceParams& params, double width,
                                    const BiasPoint& bias) {
  LeakageBreakdown prev;
  bool first = true;
  for (double t = kTMin; t <= kTMax + 1e-9; t += kTStep) {
    const LeakageBreakdown cur = leakAt(params, width, bias, t);
    EXPECT_GT(cur.subthreshold, 0.0) << label << " T=" << t;
    EXPECT_GT(cur.gate, 0.0) << label << " T=" << t;
    EXPECT_GT(cur.btbt, 0.0) << label << " T=" << t;
    if (!first) {
      // Monotonic in T: subthreshold strongly (Vth drop + vT), BTBT
      // weakly (band-gap narrowing), gate tunneling mildly (linear tc).
      EXPECT_GT(cur.subthreshold, prev.subthreshold) << label << " T=" << t;
      EXPECT_GT(cur.btbt, prev.btbt) << label << " T=" << t;
      EXPECT_GT(cur.gate, prev.gate) << label << " T=" << t;
      // Continuity: a 5 K step never jumps any component by more than
      // 35% (subthreshold moves fastest, ~e^(dT * sensitivity)); a
      // discontinuity in the models would break the thermal
      // continuation seeds and the fits alike. The gate bound is looser
      // than the jg0 tc alone suggests because the channel-tunneling
      // partition is smoothed on n*vT, which widens as T rises.
      EXPECT_LT(cur.subthreshold / prev.subthreshold, 1.35)
          << label << " T=" << t;
      EXPECT_LT(cur.btbt / prev.btbt, 1.10) << label << " T=" << t;
      EXPECT_LT(cur.gate / prev.gate, 1.10) << label << " T=" << t;
    }
    prev = cur;
    first = false;
  }
}

TEST(ThermalModelTest, OffLeakageMonotonicAndContinuousAcrossFlavours) {
  for (const Flavour& flavour : flavours()) {
    checkMonotonicityAndContinuity(flavour.name + "/nmos",
                                   flavour.tech.nmos,
                                   flavour.tech.unit_width_n,
                                   nmosOffBias(flavour.tech));
    checkMonotonicityAndContinuity(
        flavour.name + "/pmos", flavour.tech.pmos,
        flavour.tech.unit_width_n * flavour.tech.beta_ratio,
        pmosOffBias(flavour.tech));
  }
}

TEST(ThermalModelTest, SubthresholdIsTheMostTemperatureSensitive) {
  // Over the full range the subthreshold component must grow by a larger
  // factor than gate tunneling for every flavour - the component split
  // the thermal fit metrics (and the paper's Fig. 9) are built on.
  for (const Flavour& flavour : flavours()) {
    const BiasPoint bias = nmosOffBias(flavour.tech);
    const LeakageBreakdown cold = leakAt(
        flavour.tech.nmos, flavour.tech.unit_width_n, bias, kTMin);
    const LeakageBreakdown hot = leakAt(
        flavour.tech.nmos, flavour.tech.unit_width_n, bias, kTMax);
    const double sub_growth = hot.subthreshold / cold.subthreshold;
    const double gate_growth = hot.gate / cold.gate;
    const double btbt_growth = hot.btbt / cold.btbt;
    EXPECT_GT(sub_growth, 10.0) << flavour.name;
    EXPECT_GT(sub_growth, 5.0 * gate_growth) << flavour.name;
    EXPECT_GT(sub_growth, 5.0 * btbt_growth) << flavour.name;
    // Gate tunneling stays the flattest mechanism, but its off-bias
    // attribution rides the n*vT-smoothed channel partition, so it grows
    // a little over 165 K (x1.4-2.3 across flavours) - far below
    // subthreshold's orders of magnitude.
    EXPECT_LT(gate_growth, 3.0) << flavour.name;
  }
}

// Compiling coefficients at a temperature is equivalent to evaluating the
// interpreted model there - at EVERY grid temperature, which is what
// makes SolverKernel::setOptions / LoadingFixture::rebindTemperature
// (recompile coefficients in place) equivalent to a fresh build.
TEST(ThermalModelTest, CompiledCoeffsBitIdenticalAtEveryTemperature) {
  for (const Flavour& flavour : flavours()) {
    const Mosfet mosfet(flavour.tech.nmos, flavour.tech.unit_width_n);
    const std::vector<BiasPoint> biases = {
        nmosOffBias(flavour.tech),
        {0.0, 0.5 * flavour.tech.vdd, 0.0, 0.0},
        {flavour.tech.vdd, flavour.tech.vdd, 0.0, 0.0},
        {0.3, 0.9, 0.1, 0.0}};
    for (double t = kTMin; t <= kTMax + 1e-9; t += 3 * kTStep) {
      const Environment env{t};
      const DeviceCoeffs coeffs = compileDevice(mosfet, env);
      for (const BiasPoint& bias : biases) {
        const LeakageBreakdown interpreted = mosfet.leakage(bias, env);
        const LeakageBreakdown compiled = compiledLeakage(coeffs, bias);
        EXPECT_EQ(interpreted.subthreshold, compiled.subthreshold)
            << flavour.name << " T=" << t;
        EXPECT_EQ(interpreted.gate, compiled.gate)
            << flavour.name << " T=" << t;
        EXPECT_EQ(interpreted.btbt, compiled.btbt)
            << flavour.name << " T=" << t;
        EXPECT_EQ(mosfet.isOff(bias, env), compiledIsOff(coeffs, bias))
            << flavour.name << " T=" << t;
      }
    }
  }
}

}  // namespace
}  // namespace nanoleak::device
