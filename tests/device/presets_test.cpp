// Calibration contract of the device presets: the relative component
// strengths the paper's experiments rely on (DESIGN.md section 4).
#include <gtest/gtest.h>

#include <array>
#include <span>

#include "device/device_params.h"
#include "gates/gate_builder.h"
#include "util/units.h"

namespace nanoleak::device {
namespace {

LeakageBreakdown inverterLeakage(const Technology& tech, bool input) {
  const std::array<bool, 1> in{input};
  return gates::isolatedGateLeakage(gates::GateKind::kInv,
                                    std::span<const bool>(in), tech);
}

TEST(PresetsTest, SubDominatedFlavourHasSubMajority) {
  const LeakageBreakdown leak = inverterLeakage(defaultTechnology(), false);
  EXPECT_GT(leak.subthreshold, leak.gate);
  EXPECT_GT(leak.subthreshold, leak.btbt);
  EXPECT_GT(leak.subthreshold / leak.total(), 0.45);
}

TEST(PresetsTest, GateDominatedFlavourHasGateMajority) {
  const LeakageBreakdown leak =
      inverterLeakage(gateDominatedTechnology(), false);
  EXPECT_GT(leak.gate, leak.subthreshold);
  EXPECT_GT(leak.gate, leak.btbt);
  EXPECT_GT(leak.gate / leak.total(), 0.5);
}

TEST(PresetsTest, BtbtDominatedFlavourHasBtbtMajority) {
  const LeakageBreakdown leak =
      inverterLeakage(btbtDominatedTechnology(), false);
  EXPECT_GT(leak.btbt, leak.subthreshold);
  EXPECT_GT(leak.btbt, leak.gate);
}

TEST(PresetsTest, FlavourTotalsAreComparable) {
  // The paper equalizes total leakage across D25-S/G/JN so Fig. 8 isolates
  // the component mix; we hold the three within ~60 % of each other.
  const double s = inverterLeakage(defaultTechnology(), false).total();
  const double g = inverterLeakage(gateDominatedTechnology(), false).total();
  const double jn = inverterLeakage(btbtDominatedTechnology(), false).total();
  EXPECT_LT(std::max({s, g, jn}) / std::min({s, g, jn}), 1.6);
}

TEST(PresetsTest, MediciDeviceGateAndBtbtDominateAt300K) {
  const LeakageBreakdown leak = inverterLeakage(mediciTechnology(), false);
  EXPECT_GT(leak.gate, leak.subthreshold);
  EXPECT_GT(leak.btbt, leak.subthreshold);
}

TEST(PresetsTest, MediciDeviceSubthresholdDominatesWhenHot) {
  Technology tech = mediciTechnology();
  tech.temperature_k = 400.0;
  const LeakageBreakdown leak = inverterLeakage(tech, false);
  EXPECT_GT(leak.subthreshold, leak.gate);
  EXPECT_GT(leak.subthreshold, leak.btbt);
}

TEST(PresetsTest, LeakageMagnitudeIsHundredsOfNanoamps) {
  // The paper's Fig. 5 sweeps loading currents to 3000 nA produced by a
  // handful of gates; pin currents must be hundreds of nA.
  const double total = inverterLeakage(defaultTechnology(), false).total();
  EXPECT_GT(toNanoAmps(total), 200.0);
  EXPECT_LT(toNanoAmps(total), 5000.0);
}

TEST(PresetsTest, PolarityTagsAreConsistent) {
  EXPECT_EQ(d25SNmos().polarity, Polarity::kNmos);
  EXPECT_EQ(d25SPmos().polarity, Polarity::kPmos);
  EXPECT_EQ(d25GNmos().polarity, Polarity::kNmos);
  EXPECT_EQ(d25GPmos().polarity, Polarity::kPmos);
  EXPECT_EQ(d25JnNmos().polarity, Polarity::kNmos);
  EXPECT_EQ(d25JnPmos().polarity, Polarity::kPmos);
  EXPECT_STREQ(toString(Polarity::kNmos), "NMOS");
  EXPECT_STREQ(toString(Polarity::kPmos), "PMOS");
}

TEST(PresetsTest, PmosHasWeakerGateControl) {
  // The paper: SCE is worse in PMOS - larger n (flatter subthreshold slope)
  // and larger DIBL.
  EXPECT_GT(d25SPmos().n0, d25SNmos().n0);
  EXPECT_GT(d25SPmos().dibl0, d25SNmos().dibl0);
}

}  // namespace
}  // namespace nanoleak::device
