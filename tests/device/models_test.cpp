#include "device/models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "device/device_params.h"
#include "util/constants.h"
#include "util/units.h"

namespace nanoleak::device {
namespace {

constexpr double kW = 100e-9;
const Environment kRoom{300.0};

DeviceParams nmos() { return d25SNmos(); }

TEST(SubthresholdTest, ExponentialInVgsBelowThreshold) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double i0 = channelCurrent(p, none, kW, -0.06, 1.0, 0.0, kRoom);
  const double i1 = channelCurrent(p, none, kW, -0.03, 1.0, 0.0, kRoom);
  const double i2 = channelCurrent(p, none, kW, 0.00, 1.0, 0.0, kRoom);
  // Equal Vgs steps -> equal current ratios (pure exponential regime).
  const double r1 = i1 / i0;
  const double r2 = i2 / i1;
  EXPECT_NEAR(r1, r2, 0.12 * r1);
  EXPECT_GT(r1, 2.0);  // 50 mV must be well over one e-fold
}

TEST(SubthresholdTest, DiblRaisesOffCurrentWithVds) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double low = channelCurrent(p, none, kW, 0.0, 0.1, 0.0, kRoom);
  const double high = channelCurrent(p, none, kW, 0.0, 1.0, 0.0, kRoom);
  EXPECT_GT(high, 1.2 * low);
}

TEST(SubthresholdTest, BodyBiasLowersLeakage) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double no_bias = channelCurrent(p, none, kW, 0.0, 1.0, 0.0, kRoom);
  const double reverse = channelCurrent(p, none, kW, 0.0, 1.0, 0.4, kRoom);
  EXPECT_LT(reverse, no_bias);
}

TEST(SubthresholdTest, GrowsStronglyWithTemperature) {
  // Use the 50 nm device whose Vth keeps the channel in weak inversion
  // over the whole range (the D25 flavours are deliberately leaky and
  // their off-state saturates when hot).
  const DeviceParams p = d50MediciNmos();
  const DeviceVariation none{};
  const double cold = channelCurrent(p, none, kW, 0.0, 1.0, 0.0, {300.0});
  const double hot = channelCurrent(p, none, kW, 0.0, 1.0, 0.0, {400.0});
  EXPECT_GT(hot, 5.0 * cold);  // exponential T dependence
}

TEST(SubthresholdTest, ShorterChannelLeaksMore) {
  const DeviceParams p = nmos();
  DeviceVariation shorter{};
  shorter.delta_length = -3e-9;
  const DeviceVariation none{};
  EXPECT_GT(channelCurrent(p, shorter, kW, 0.0, 1.0, 0.0, kRoom),
            channelCurrent(p, none, kW, 0.0, 1.0, 0.0, kRoom));
}

TEST(SubthresholdTest, ThickerOxideLeaksMoreOff) {
  // Thicker oxide worsens SCE (higher n, stronger DIBL) - paper Fig. 4b.
  const DeviceParams p = nmos();
  DeviceVariation thick{};
  thick.delta_tox = 0.2e-9;
  const DeviceVariation none{};
  EXPECT_GT(channelCurrent(p, thick, kW, 0.0, 1.0, 0.0, kRoom),
            channelCurrent(p, none, kW, 0.0, 1.0, 0.0, kRoom));
}

TEST(SubthresholdTest, OnCurrentDwarfsOffCurrent) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double off = channelCurrent(p, none, kW, 0.0, 1.0, 0.0, kRoom);
  const double on = channelCurrent(p, none, kW, 1.0, 1.0, 0.0, kRoom);
  // This is a deliberately leaky research device; still ~two decades.
  EXPECT_GT(on, 50.0 * off);
}

TEST(SubthresholdTest, LinearRegionConductanceIsKiloOhmClass) {
  // The loading effect's magnitude depends on ON devices holding nets with
  // a kilo-ohm-class resistance (DESIGN.md section 5.1).
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double dv = 1e-3;
  const double i = channelCurrent(p, none, kW, 1.0, dv, 0.0, kRoom);
  const double r_on = dv / i;
  EXPECT_GT(r_on, 300.0);
  EXPECT_LT(r_on, 30e3);
}

TEST(SubthresholdTest, ZeroVdsGivesZeroCurrent) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  EXPECT_DOUBLE_EQ(channelCurrent(p, none, kW, 0.5, 0.0, 0.0, kRoom), 0.0);
}

TEST(GateTunnelingTest, OddSymmetryInOxideVoltage) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const GateTunneling fwd = gateTunneling(p, none, kW, 1.0, 0.0, 0.0, 0.0,
                                          kRoom);
  const GateTunneling rev = gateTunneling(p, none, kW, -1.0, 0.0, 0.0, 0.0,
                                          kRoom);
  EXPECT_NEAR(fwd.igso, -rev.igso, 1e-18);
  EXPECT_NEAR(fwd.igdo, -rev.igdo, 1e-18);
}

TEST(GateTunnelingTest, ExponentialInOxideThickness) {
  const DeviceParams p = nmos();
  DeviceVariation thick{};
  thick.delta_tox = 2e-10;  // +2 Angstrom
  const DeviceVariation none{};
  const double j_nom =
      gateTunneling(p, none, kW, 1.0, 0.0, 0.0, 0.0, kRoom).magnitude();
  const double j_thick =
      gateTunneling(p, thick, kW, 1.0, 0.0, 0.0, 0.0, kRoom).magnitude();
  // ~1 decade per 2 Angstrom.
  EXPECT_GT(j_nom / j_thick, 5.0);
  EXPECT_LT(j_nom / j_thick, 20.0);
}

TEST(GateTunnelingTest, NearlyTemperatureIndependent) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double cold =
      gateTunneling(p, none, kW, 1.0, 0.0, 0.0, 0.0, {300.0}).magnitude();
  const double hot =
      gateTunneling(p, none, kW, 1.0, 0.0, 0.0, 0.0, {400.0}).magnitude();
  EXPECT_LT(hot / cold, 1.1);
  EXPECT_GT(hot / cold, 1.0);
}

TEST(GateTunnelingTest, ChannelComponentRequiresInversion) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  // Off device (gate 0, drain 1): channel components negligible vs overlap.
  const GateTunneling off = gateTunneling(p, none, kW, 0.0, 1.0, 0.0, 0.0,
                                          kRoom);
  EXPECT_LT(std::abs(off.igcs) + std::abs(off.igcd),
            0.2 * std::abs(off.igdo));
  // On device (gate 1, source/drain 0): channel dominates overlaps.
  const GateTunneling on = gateTunneling(p, none, kW, 1.0, 0.0, 0.0, 0.0,
                                         kRoom);
  EXPECT_GT(std::abs(on.igcs) + std::abs(on.igcd), std::abs(on.igso));
}

TEST(GateTunnelingTest, GrowsWithOxideVoltage) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  double prev = 0.0;
  for (double v = 0.2; v <= 1.2; v += 0.2) {
    const double mag =
        gateTunneling(p, none, kW, v, 0.0, 0.0, 0.0, kRoom).magnitude();
    EXPECT_GT(mag, prev);
    prev = mag;
  }
}

TEST(BtbtTest, ZeroAtForwardOrZeroBias) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  EXPECT_LT(junctionBtbt(p, none, kW, -0.5, kRoom), 1e-15);
  EXPECT_LT(junctionBtbt(p, none, kW, 0.0, kRoom), 5e-11);
}

TEST(BtbtTest, IncreasesWithReverseBias) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  double prev = 0.0;
  for (double v = 0.2; v <= 1.2; v += 0.2) {
    const double i = junctionBtbt(p, none, kW, v, kRoom);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(BtbtTest, IncreasesWithHaloDoping) {
  DeviceParams lo = nmos();
  DeviceParams hi = nmos();
  hi.halo_doping = 2.0 * lo.halo_doping;
  const DeviceVariation none{};
  EXPECT_GT(junctionBtbt(hi, none, kW, 1.0, kRoom),
            2.0 * junctionBtbt(lo, none, kW, 1.0, kRoom));
}

TEST(BtbtTest, MarginallyIncreasesWithTemperature) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  const double cold = junctionBtbt(p, none, kW, 1.0, {300.0});
  const double hot = junctionBtbt(p, none, kW, 1.0, {400.0});
  EXPECT_GT(hot, cold);
  EXPECT_LT(hot, 3.0 * cold);  // marginal, not exponential like Isub
}

TEST(ThresholdTest, HaloDopingRaisesVth) {
  DeviceParams p = nmos();
  const DeviceVariation none{};
  const double vth_nom = p.thresholdVoltage(0.0, 0.0, 300.0, none);
  p.halo_doping *= 2.0;
  const double vth_hi = p.thresholdVoltage(0.0, 0.0, 300.0, none);
  EXPECT_GT(vth_hi, vth_nom);
}

TEST(ThresholdTest, TemperatureLowersVth) {
  const DeviceParams p = nmos();
  const DeviceVariation none{};
  EXPECT_LT(p.thresholdVoltage(0.0, 0.0, 400.0, none),
            p.thresholdVoltage(0.0, 0.0, 300.0, none));
}

TEST(SoftPlusTest, MatchesAsymptotes) {
  EXPECT_NEAR(softPlus(1.0, 0.01), 1.0, 1e-9);
  EXPECT_NEAR(softPlus(-1.0, 0.01), 0.0, 1e-9);
  EXPECT_GT(softPlus(0.0, 0.01), 0.0);
}

}  // namespace
}  // namespace nanoleak::device
