#include "logic/logic_sim.h"

#include <gtest/gtest.h>

#include "logic/generators.h"
#include "util/error.h"

namespace nanoleak::logic {
namespace {

using gates::GateKind;

TEST(LogicSimTest, InverterChainAlternates) {
  const LogicNetlist nl = inverterChain(4);
  const LogicSimulator sim(nl);
  ASSERT_EQ(sim.sourceCount(), 1u);
  const auto values = sim.simulate({true});
  // in=1 -> n0=0 -> n1=1 -> n2=0 -> n3=1.
  EXPECT_TRUE(values[nl.net("in")]);
  EXPECT_FALSE(values[nl.net("n0")]);
  EXPECT_TRUE(values[nl.net("n1")]);
  EXPECT_FALSE(values[nl.net("n2")]);
  EXPECT_TRUE(values[nl.net("n3")]);
}

TEST(LogicSimTest, C17KnownVectors) {
  const LogicNetlist nl = c17();
  const LogicSimulator sim(nl);
  // c17 inputs ordered G1,G2,G3,G6,G7.
  // All-zero inputs: G11 = NAND(G3,G6) = 1; G16 = NAND(G2,G11) = 1;
  // G19 = NAND(G11,G7) = 1; G10 = NAND(G1,G3) = 1; G22 = NAND(G10,G16)=0;
  // G23 = NAND(G16,G19) = 0.
  const auto v0 = sim.simulate({false, false, false, false, false});
  EXPECT_FALSE(v0[nl.net("G22")]);
  EXPECT_FALSE(v0[nl.net("G23")]);
  // G1=G3=1, others 0: G10 = 0 -> G22 = 1.
  const auto v1 = sim.simulate({true, false, true, false, false});
  EXPECT_TRUE(v1[nl.net("G22")]);
}

TEST(LogicSimTest, SourceCountMismatchThrows) {
  const LogicNetlist nl = inverterChain(2);
  const LogicSimulator sim(nl);
  EXPECT_THROW(sim.simulate({true, false}), Error);
}

TEST(LogicSimTest, DffOutputsAreSources) {
  LogicNetlist nl;
  const NetId in = nl.addNet("in");
  nl.markPrimaryInput(in);
  const NetId d = nl.addNet("d");
  const NetId q = nl.addNet("q");
  const NetId out = nl.addNet("out");
  nl.addGate(GateKind::kInv, {in}, d);
  nl.addDff(d, q);
  nl.addGate(GateKind::kNand2, {in, q}, out);
  const LogicSimulator sim(nl);
  ASSERT_EQ(sim.sourceCount(), 2u);
  // q forced to 1 regardless of d.
  const auto values = sim.simulate({true, true});
  EXPECT_FALSE(values[out]);  // NAND(1,1)
  const auto values2 = sim.simulate({true, false});
  EXPECT_TRUE(values2[out]);  // NAND(1,0)
}

TEST(LogicSimTest, AdderMatchesIntegerAddition) {
  const LogicNetlist nl = rippleCarryAdder(4);
  const LogicSimulator sim(nl);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; b += 3) {
      for (unsigned cin = 0; cin <= 1; ++cin) {
        // Source order: a0,b0,a1,b1,...,cin (insertion order).
        std::vector<bool> in;
        for (int i = 0; i < 4; ++i) {
          in.push_back(((a >> i) & 1) != 0);
          in.push_back(((b >> i) & 1) != 0);
        }
        in.push_back(cin != 0);
        const auto values = sim.simulate(in);
        unsigned sum = 0;
        for (int i = 0; i < 4; ++i) {
          if (values[nl.primaryOutputs()[static_cast<std::size_t>(i)]]) {
            sum |= 1u << i;
          }
        }
        if (values[nl.primaryOutputs()[4]]) {
          sum |= 1u << 4;
        }
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

TEST(LogicSimTest, MultiplierMatchesIntegerProduct) {
  const LogicNetlist nl = arrayMultiplier(4);
  const LogicSimulator sim(nl);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) {
        in.push_back(((a >> i) & 1) != 0);
        in.push_back(((b >> i) & 1) != 0);
      }
      const auto values = sim.simulate(in);
      unsigned product = 0;
      for (int i = 0; i < 8; ++i) {
        if (values[nl.primaryOutputs()[static_cast<std::size_t>(i)]]) {
          product |= 1u << i;
        }
      }
      EXPECT_EQ(product, a * b) << a << "*" << b;
    }
  }
}

TEST(LogicSimTest, AluOpsMatchReference) {
  const LogicNetlist nl = alu8();
  const LogicSimulator sim(nl);
  // Source order: a0,b0,...,a7,b7,op0,op1,op2.
  auto run = [&](unsigned a, unsigned b, unsigned op) {
    std::vector<bool> in;
    for (int i = 0; i < 8; ++i) {
      in.push_back(((a >> i) & 1) != 0);
      in.push_back(((b >> i) & 1) != 0);
    }
    for (int i = 0; i < 3; ++i) {
      in.push_back(((op >> i) & 1) != 0);
    }
    const auto values = sim.simulate(in);
    unsigned y = 0;
    for (int i = 0; i < 8; ++i) {
      if (values[nl.primaryOutputs()[static_cast<std::size_t>(i)]]) {
        y |= 1u << i;
      }
    }
    return y;
  };
  const unsigned a = 0xA5;
  const unsigned b = 0x3C;
  EXPECT_EQ(run(a, b, 0), (a + b) & 0xFF);        // ADD
  EXPECT_EQ(run(a, b, 1), (a - b) & 0xFF);        // SUB
  EXPECT_EQ(run(a, b, 2), a & b);                 // AND
  EXPECT_EQ(run(a, b, 3), a | b);                 // OR
  EXPECT_EQ(run(a, b, 4), a ^ b);                 // XOR
  EXPECT_EQ(run(a, b, 5), (~(a | b)) & 0xFF);     // NOR
  EXPECT_EQ(run(a, b, 6), (~a) & 0xFF);           // NOT A
  EXPECT_EQ(run(a, b, 7), a);                     // PASS A
}

TEST(LogicSimTest, RandomPatternIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(randomPattern(64, a), randomPattern(64, b));
}

TEST(LogicSimTest, SimulateIntoMatchesSimulate) {
  const LogicNetlist nl = arrayMultiplier(4);
  const LogicSimulator sim(nl);
  Rng rng(3);
  std::vector<bool> reused;
  for (int i = 0; i < 4; ++i) {
    const auto pattern = randomPattern(sim.sourceCount(), rng);
    sim.simulateInto(pattern, reused);
    EXPECT_EQ(reused, sim.simulate(pattern));
  }
}

TEST(LogicSimTest, SimulateDeltaTracksFullResimulation) {
  const LogicNetlist nl = alu8();
  const LogicSimulator sim(nl);
  Rng rng(17);
  std::vector<bool> pattern = randomPattern(sim.sourceCount(), rng);
  std::vector<bool> values = sim.simulate(pattern);

  DeltaSimScratch scratch;
  std::vector<GateId> dirty;
  std::vector<NetId> changed;
  for (int step = 0; step < 32; ++step) {
    // Flip one bit, and occasionally a second (multi-source events).
    const std::size_t bit = rng.uniformInt(pattern.size());
    pattern[bit] = !pattern[bit];
    if (rng.bernoulli(0.25)) {
      const std::size_t extra = rng.uniformInt(pattern.size());
      pattern[extra] = !pattern[extra];
    }
    sim.simulateDelta(pattern, values, dirty, changed, scratch);
    EXPECT_EQ(values, sim.simulate(pattern)) << "step " << step;

    // Dirty gates come back in topological order, without duplicates.
    for (std::size_t i = 1; i < dirty.size(); ++i) {
      EXPECT_LT(sim.topoPosition(dirty[i - 1]), sim.topoPosition(dirty[i]));
    }
  }
}

TEST(LogicSimTest, SimulateDeltaReportsExactDirtySet) {
  // in -> INV(g0) -> n0 -> INV(g1) -> n1 -> INV(g2) -> n2: flipping the
  // input dirties the whole chain; an identical pattern dirties nothing.
  const LogicNetlist nl = inverterChain(3);
  const LogicSimulator sim(nl);
  std::vector<bool> values = sim.simulate({false});

  DeltaSimScratch scratch;
  std::vector<GateId> dirty;
  std::vector<NetId> changed;
  sim.simulateDelta({false}, values, dirty, changed, scratch);
  EXPECT_TRUE(dirty.empty());
  EXPECT_TRUE(changed.empty());

  sim.simulateDelta({true}, values, dirty, changed, scratch);
  EXPECT_EQ(dirty.size(), 3u);
  EXPECT_EQ(changed.size(), 4u);  // in, n0, n1, n2
  EXPECT_EQ(values, sim.simulate({true}));
}

TEST(LogicSimTest, SimulateDeltaStopsWhereValuesReconverge) {
  // NAND(a, b) with b = 0 masks a: flipping a re-evaluates only the NAND,
  // whose output does not change, so nothing downstream is touched.
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  const NetId b = nl.addNet("b");
  nl.markPrimaryInput(a);
  nl.markPrimaryInput(b);
  const NetId n = nl.addNet("n");
  const NetId out = nl.addNet("out");
  nl.addGate(GateKind::kNand2, {a, b}, n);
  nl.addGate(GateKind::kInv, {n}, out);
  nl.markPrimaryOutput(out);
  const LogicSimulator sim(nl);

  std::vector<bool> values = sim.simulate({false, false});
  DeltaSimScratch scratch;
  std::vector<GateId> dirty;
  std::vector<NetId> changed;
  sim.simulateDelta({true, false}, values, dirty, changed, scratch);
  EXPECT_EQ(dirty.size(), 1u);    // just the NAND
  EXPECT_EQ(changed.size(), 1u);  // just net a
  EXPECT_EQ(values, sim.simulate({true, false}));
}

}  // namespace
}  // namespace nanoleak::logic
