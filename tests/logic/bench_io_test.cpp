#include "logic/bench_io.h"

#include <gtest/gtest.h>

#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/error.h"

namespace nanoleak::logic {
namespace {

const char* kTiny = R"(
# a tiny sequential circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G5)
G3 = NAND(G0, G1)
G4 = DFF(G3)
G5 = NOT(G4)
)";

TEST(BenchIoTest, ParsesTinyCircuit) {
  const LogicNetlist nl = parseBenchString(kTiny);
  EXPECT_EQ(nl.primaryInputs().size(), 2u);
  EXPECT_EQ(nl.primaryOutputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.gateCount(), 2u);
  EXPECT_EQ(nl.gate(nl.driverGate(nl.net("G3"))).kind,
            gates::GateKind::kNand2);
}

TEST(BenchIoTest, ParsesC17Text) {
  const char* c17_text = R"(
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";
  const LogicNetlist parsed = parseBenchString(c17_text);
  EXPECT_EQ(parsed.gateCount(), 6u);
  // Behaviour matches the generator's c17 on all 32 vectors.
  const LogicNetlist built = c17();
  const LogicSimulator sim_p(parsed);
  const LogicSimulator sim_b(built);
  for (unsigned v = 0; v < 32; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) {
      in.push_back(((v >> i) & 1) != 0);
    }
    const auto vp = sim_p.simulate(in);
    const auto vb = sim_b.simulate(in);
    EXPECT_EQ(vp[parsed.net("G22")], vb[built.net("G22")]) << v;
    EXPECT_EQ(vp[parsed.net("G23")], vb[built.net("G23")]) << v;
  }
}

TEST(BenchIoTest, DecomposesWideGates) {
  const char* text = R"(
INPUT(i0)
INPUT(i1)
INPUT(i2)
INPUT(i3)
INPUT(i4)
INPUT(i5)
OUTPUT(o)
o = NAND(i0, i1, i2, i3, i4, i5)
)";
  const LogicNetlist nl = parseBenchString(text);
  EXPECT_GT(nl.gateCount(), 1u);  // tree expansion
  const LogicSimulator sim(nl);
  for (unsigned v = 0; v < 64; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 6; ++i) {
      in.push_back(((v >> i) & 1) != 0);
    }
    EXPECT_EQ(sim.simulate(in)[nl.net("o")], v != 63) << v;
  }
}

TEST(BenchIoTest, DecomposesWideXor) {
  const char* text = R"(
INPUT(i0)
INPUT(i1)
INPUT(i2)
INPUT(i3)
INPUT(i4)
OUTPUT(o)
o = XOR(i0, i1, i2, i3, i4)
)";
  const LogicNetlist nl = parseBenchString(text);
  const LogicSimulator sim(nl);
  for (unsigned v = 0; v < 32; ++v) {
    std::vector<bool> in;
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      const bool bit = ((v >> i) & 1) != 0;
      in.push_back(bit);
      ones += bit ? 1 : 0;
    }
    EXPECT_EQ(sim.simulate(in)[nl.net("o")], ones % 2 == 1) << v;
  }
}

/// Asserts the input throws ParseError pointing at 1-based `line`.
void expectParseErrorAtLine(const std::string& text, int line) {
  try {
    parseBenchString(text);
    FAIL() << "expected ParseError for: " << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what() << " for: " << text;
  }
}

TEST(BenchIoTest, MalformedInputsThrowWithLineNumbers) {
  // Each malformed statement is reported on its own 1-based line, also
  // when preceded by blank lines and comments (which count).
  expectParseErrorAtLine("INPUT G0", 1);
  expectParseErrorAtLine("INPUT(G0)\nG1 = NAND(G0", 2);
  expectParseErrorAtLine("INPUT(G0)\n\n# comment\nG1 NAND(G0)", 4);
  expectParseErrorAtLine("INPUT(G0)\nG1 = WIBBLE(G0)", 2);
  expectParseErrorAtLine("INPUT(a)\nG1 = DFF(a, a)", 2);
  expectParseErrorAtLine("INPUT(a)\nbad line here\n", 2);
  expectParseErrorAtLine("OUTPUT G9", 1);
  expectParseErrorAtLine("INPUT(a)\nG1 = NAND()", 2);           // no inputs
  expectParseErrorAtLine("INPUT(a)\nINPUT(b)\nG1 = NOT(a, b)", 3);  // arity
}

TEST(BenchIoTest, ToBenchTextRejectsKindsWithoutBenchSpelling) {
  // AOI21/OAI21/MUX2 exist in the cell library but have no .bench
  // primitive; the writer must refuse them with a message naming the kind.
  struct Case {
    gates::GateKind kind;
    const char* name;
  };
  for (const Case& test_case :
       {Case{gates::GateKind::kAoi21, "AOI21"},
        Case{gates::GateKind::kOai21, "OAI21"},
        Case{gates::GateKind::kMux2, "MUX2"}}) {
    LogicNetlist netlist;
    const NetId a = netlist.addNet("a");
    const NetId b = netlist.addNet("b");
    const NetId c = netlist.addNet("c");
    const NetId y = netlist.addNet("y");
    netlist.markPrimaryInput(a);
    netlist.markPrimaryInput(b);
    netlist.markPrimaryInput(c);
    netlist.markPrimaryOutput(y);
    netlist.addGate(test_case.kind, {a, b, c}, y);
    try {
      toBenchText(netlist);
      FAIL() << "expected Error for " << test_case.name;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(test_case.name),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(BenchIoTest, RoundTripPreservesBehaviour) {
  const LogicNetlist original = parseBenchString(kTiny);
  const std::string text = toBenchText(original);
  const LogicNetlist reparsed = parseBenchString(text);
  EXPECT_EQ(reparsed.gateCount(), original.gateCount());
  EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
  const LogicSimulator sim_a(original);
  const LogicSimulator sim_b(reparsed);
  for (unsigned v = 0; v < 8; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 3; ++i) {  // 2 PIs + 1 DFF
      in.push_back(((v >> i) & 1) != 0);
    }
    EXPECT_EQ(sim_a.simulate(in)[original.net("G5")],
              sim_b.simulate(in)[reparsed.net("G5")]);
  }
}

TEST(BenchIoTest, MissingFileThrows) {
  EXPECT_THROW(parseBenchFile("/nonexistent/path.bench"), Error);
}

}  // namespace
}  // namespace nanoleak::logic
