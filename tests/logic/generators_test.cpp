#include "logic/generators.h"

#include <gtest/gtest.h>

#include "logic/logic_sim.h"
#include "util/error.h"

namespace nanoleak::logic {
namespace {

TEST(GeneratorsTest, InverterChainShape) {
  const LogicNetlist nl = inverterChain(8);
  EXPECT_EQ(nl.gateCount(), 8u);
  EXPECT_EQ(computeStats(nl).logic_depth, 8);
  EXPECT_THROW(inverterChain(0), Error);
}

TEST(GeneratorsTest, FanoutStarShape) {
  const LogicNetlist nl = fanoutStar(6);
  EXPECT_EQ(nl.gateCount(), 7u);  // driver + 6 leaves
  const NetId mid = nl.net("mid");
  EXPECT_EQ(nl.fanout(mid).size(), 6u);
  EXPECT_EQ(computeStats(nl).max_fanout, 6);
}

TEST(GeneratorsTest, C17Shape) {
  const LogicNetlist nl = c17();
  EXPECT_EQ(nl.gateCount(), 6u);
  EXPECT_EQ(nl.primaryInputs().size(), 5u);
  EXPECT_EQ(nl.primaryOutputs().size(), 2u);
}

TEST(GeneratorsTest, MultiplierGateCountMatchesMult88) {
  const LogicNetlist nl = arrayMultiplier(8);
  // 64 partial products + adder array: a few hundred cells.
  EXPECT_GT(nl.gateCount(), 250u);
  EXPECT_LT(nl.gateCount(), 500u);
  EXPECT_EQ(nl.primaryInputs().size(), 16u);
  EXPECT_EQ(nl.primaryOutputs().size(), 16u);
}

TEST(GeneratorsTest, AluShape) {
  const LogicNetlist nl = alu8();
  EXPECT_GT(nl.gateCount(), 100u);
  EXPECT_EQ(nl.primaryInputs().size(), 19u);  // 8+8 data + 3 op
  EXPECT_EQ(nl.primaryOutputs().size(), 9u);  // 8 bits + carry
}

TEST(GeneratorsTest, IscasSpecsMatchPublishedShapes) {
  const SyntheticSpec s838 = iscasSpec("s838");
  EXPECT_EQ(s838.gates, 446u);
  EXPECT_EQ(s838.dffs, 32u);
  const SyntheticSpec s13207 = iscasSpec("s13207");
  EXPECT_EQ(s13207.gates, 7951u);
  EXPECT_EQ(s13207.dffs, 638u);
  // Paper misprints map to the real circuits.
  EXPECT_EQ(iscasSpec("s5372").name, "s5378");
  EXPECT_EQ(iscasSpec("s9378").name, "s9234");
  EXPECT_THROW(iscasSpec("s99999"), Error);
  EXPECT_EQ(knownIscasNames().size(), 6u);
}

TEST(GeneratorsTest, SyntheticCircuitHonoursSpec) {
  const SyntheticSpec spec = iscasSpec("s1196");
  const LogicNetlist nl = synthesizeIscasLike(spec, 12345);
  EXPECT_EQ(nl.gateCount(), spec.gates);
  EXPECT_EQ(nl.dffs().size(), spec.dffs);
  EXPECT_EQ(nl.primaryInputs().size(), spec.primary_inputs);
  EXPECT_EQ(nl.primaryOutputs().size(), spec.primary_outputs);
  EXPECT_NO_THROW(nl.validate());
  const NetlistStats stats = computeStats(nl);
  // Realistic fanout profile: mean in [1, 3], some high-fanout nets.
  EXPECT_GT(stats.mean_fanout, 0.8);
  EXPECT_LT(stats.mean_fanout, 3.0);
  EXPECT_GE(stats.max_fanout, 4);
  EXPECT_GT(stats.logic_depth, 3);
}

TEST(GeneratorsTest, SyntheticCircuitIsSeedDeterministic) {
  const SyntheticSpec spec = iscasSpec("s838");
  const LogicNetlist a = synthesizeIscasLike(spec, 7);
  const LogicNetlist b = synthesizeIscasLike(spec, 7);
  ASSERT_EQ(a.gateCount(), b.gateCount());
  for (GateId g = 0; g < a.gateCount(); ++g) {
    EXPECT_EQ(a.gate(g).kind, b.gate(g).kind);
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
  const LogicNetlist c = synthesizeIscasLike(spec, 8);
  bool differs = false;
  for (GateId g = 0; g < a.gateCount() && !differs; ++g) {
    differs = a.gate(g).kind != c.gate(g).kind ||
              a.gate(g).inputs != c.gate(g).inputs;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorsTest, SyntheticCircuitSimulates) {
  const LogicNetlist nl = synthesizeIscasLike(iscasSpec("s838"), 42);
  const LogicSimulator sim(nl);
  Rng rng(1);
  const auto pattern = randomPattern(sim.sourceCount(), rng);
  EXPECT_NO_THROW(sim.simulate(pattern));
}

class AdderWidths : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidths, AdderIsCorrectAcrossWidths) {
  const int bits = GetParam();
  const LogicNetlist nl = rippleCarryAdder(bits);
  const LogicSimulator sim(nl);
  const unsigned max = 1u << bits;
  // Sample the corners plus a stride through the space.
  for (unsigned a : {0u, 1u, max - 1, max / 2}) {
    for (unsigned b : {0u, 1u, max - 1, max / 3 + 1}) {
      std::vector<bool> in;
      for (int i = 0; i < bits; ++i) {
        in.push_back(((a >> i) & 1) != 0);
        in.push_back(((b >> i) & 1) != 0);
      }
      in.push_back(false);
      const auto values = sim.simulate(in);
      unsigned sum = 0;
      for (int i = 0; i <= bits; ++i) {
        if (values[nl.primaryOutputs()[static_cast<std::size_t>(i)]]) {
          sum |= 1u << i;
        }
      }
      EXPECT_EQ(sum, a + b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidths, ::testing::Values(1, 2, 3, 5, 8),
                         ::testing::PrintToStringParamName());

class MultiplierWidths : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierWidths, MultiplierIsCorrectAcrossWidths) {
  const int bits = GetParam();
  const LogicNetlist nl = arrayMultiplier(bits);
  const LogicSimulator sim(nl);
  const unsigned max = 1u << bits;
  for (unsigned a : {0u, 1u, max - 1, max / 2 + 1}) {
    for (unsigned b : {0u, 1u, max - 1, max / 3 + 1}) {
      std::vector<bool> in;
      for (int i = 0; i < bits; ++i) {
        in.push_back(((a >> i) & 1) != 0);
        in.push_back(((b >> i) & 1) != 0);
      }
      const auto values = sim.simulate(in);
      unsigned product = 0;
      for (int i = 0; i < 2 * bits; ++i) {
        if (values[nl.primaryOutputs()[static_cast<std::size_t>(i)]]) {
          product |= 1u << i;
        }
      }
      EXPECT_EQ(product, a * b) << a << "*" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths,
                         ::testing::Values(2, 3, 4, 6, 8),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace nanoleak::logic
