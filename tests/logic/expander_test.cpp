#include "logic/expander.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"

namespace nanoleak::logic {
namespace {

using gates::GateKind;

TEST(ExpanderTest, ChainExpandsToExpectedDevices) {
  const LogicNetlist nl = inverterChain(3);
  const ExpandedCircuit ex =
      expandToTransistors(nl, device::defaultTechnology(), {true});
  EXPECT_EQ(ex.netlist.deviceCount(), 6u);  // 3 inverters x 2 transistors
  EXPECT_EQ(ex.gate_count, 3u);
  // PI net bound to its logic level.
  EXPECT_TRUE(ex.netlist.isFixed(ex.net_node[nl.net("in")]));
  EXPECT_DOUBLE_EQ(ex.netlist.fixedVoltage(ex.net_node[nl.net("in")]), 1.0);
  // Gate-driven nets are free.
  EXPECT_FALSE(ex.netlist.isFixed(ex.net_node[nl.net("n0")]));
}

TEST(ExpanderTest, SeedsMatchLogicLevels) {
  const LogicNetlist nl = inverterChain(4);
  const ExpandedCircuit ex =
      expandToTransistors(nl, device::defaultTechnology(), {false});
  const LogicSimulator sim(nl);
  const auto values = sim.simulate({false});
  for (NetId net = 0; net < nl.netCount(); ++net) {
    EXPECT_DOUBLE_EQ(ex.seed[ex.net_node[net]], values[net] ? 1.0 : 0.0);
  }
}

TEST(ExpanderTest, SolvedVoltagesTrackLogicValues) {
  const LogicNetlist nl = c17();
  Rng rng(3);
  const auto pattern = randomPattern(5, rng);
  const ExpandedCircuit ex =
      expandToTransistors(nl, device::defaultTechnology(), pattern);
  circuit::SolverOptions options;
  const circuit::Solution s =
      circuit::DcSolver(options).solve(ex.netlist, ex.seed, ex.sweep_order);
  ASSERT_TRUE(s.converged);
  const LogicSimulator sim(nl);
  const auto values = sim.simulate(pattern);
  for (NetId net = 0; net < nl.netCount(); ++net) {
    const double v = s.voltages[ex.net_node[net]];
    if (values[net]) {
      EXPECT_GT(v, 0.8) << nl.netName(net);
    } else {
      EXPECT_LT(v, 0.2) << nl.netName(net);
    }
  }
}

TEST(ExpanderTest, DffBoundariesAreModeled) {
  LogicNetlist nl;
  const NetId in = nl.addNet("in");
  nl.markPrimaryInput(in);
  const NetId d = nl.addNet("d");
  const NetId q = nl.addNet("q");
  const NetId out = nl.addNet("out");
  nl.addGate(GateKind::kInv, {in}, d);
  nl.addDff(d, q, "ff");
  nl.addGate(GateKind::kInv, {q}, out);
  nl.markPrimaryOutput(out);

  const ExpandedCircuit ex =
      expandToTransistors(nl, device::defaultTechnology(), {true, false});
  // 2 logic inverters + Q driver inverter + D load inverter = 8 devices.
  EXPECT_EQ(ex.netlist.deviceCount(), 8u);
  // The Q net is driven (free node with a driver), not ideally bound.
  EXPECT_FALSE(ex.netlist.isFixed(ex.net_node[q]));

  circuit::SolverOptions options;
  const circuit::Solution s =
      circuit::DcSolver(options).solve(ex.netlist, ex.seed, ex.sweep_order);
  ASSERT_TRUE(s.converged);
  // q = 0 was requested; the boundary driver must hold it near ground.
  EXPECT_LT(s.voltages[ex.net_node[q]], 0.1);
  // Boundary devices are unowned, so per-gate accounting has 2 gates.
  const device::Environment env{300.0};
  const auto by_owner =
      circuit::leakageByOwner(ex.netlist, s.voltages, env, ex.gate_count);
  EXPECT_EQ(by_owner.size(), 3u);
  EXPECT_GT(by_owner[2].total(), 0.0);  // boundary bucket leaks too
}

TEST(ExpanderTest, VariationProviderReachesDevices) {
  const LogicNetlist nl = inverterChain(2);
  int calls = 0;
  const gates::VariationProvider provider = [&calls]() {
    ++calls;
    return device::DeviceVariation{};
  };
  const ExpandedCircuit ex = expandToTransistors(
      nl, device::defaultTechnology(), {false}, provider);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(ex.netlist.deviceCount(), 4u);
}

TEST(ExpanderTest, KclResidualsVanishOnMult) {
  const LogicNetlist nl = arrayMultiplier(3);
  Rng rng(9);
  const LogicSimulator sim(nl);
  const auto pattern = randomPattern(sim.sourceCount(), rng);
  const ExpandedCircuit ex =
      expandToTransistors(nl, device::defaultTechnology(), pattern);
  circuit::SolverOptions options;
  const circuit::Solution s =
      circuit::DcSolver(options).solve(ex.netlist, ex.seed, ex.sweep_order);
  ASSERT_TRUE(s.converged);
  EXPECT_LT(s.max_residual, options.tol_current);
  // Spot-check KCL at several free nodes.
  for (circuit::NodeId node = 0; node < ex.netlist.nodeCount(); node += 7) {
    if (!ex.netlist.isFixed(node)) {
      EXPECT_LT(std::abs(circuit::DcSolver::nodeResidual(
                    ex.netlist, s.voltages, node, options)),
                options.tol_current);
    }
  }
}

}  // namespace
}  // namespace nanoleak::logic
