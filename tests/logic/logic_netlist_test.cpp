#include "logic/logic_netlist.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nanoleak::logic {
namespace {

using gates::GateKind;

TEST(LogicNetlistTest, NetsAreNamedAndUnique) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  EXPECT_EQ(nl.netName(a), "a");
  EXPECT_THROW(nl.addNet("a"), Error);
  EXPECT_EQ(nl.getOrAddNet("a"), a);
  EXPECT_TRUE(nl.hasNet("a"));
  EXPECT_FALSE(nl.hasNet("b"));
  EXPECT_THROW(nl.net("b"), Error);
}

TEST(LogicNetlistTest, DriversAreExclusive) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  const NetId out = nl.addNet("out");
  nl.markPrimaryInput(a);
  EXPECT_THROW(nl.markPrimaryInput(a), Error);  // already driven
  nl.addGate(GateKind::kInv, {a}, out);
  EXPECT_THROW(nl.addGate(GateKind::kInv, {a}, out), Error);
  EXPECT_EQ(nl.driverKind(a), DriverKind::kPrimaryInput);
  EXPECT_EQ(nl.driverKind(out), DriverKind::kGate);
  EXPECT_EQ(nl.driverGate(out), 0u);
  EXPECT_THROW(nl.driverGate(a), Error);
}

TEST(LogicNetlistTest, FanoutTracksPins) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  const NetId x = nl.addNet("x");
  const NetId y = nl.addNet("y");
  nl.markPrimaryInput(a);
  nl.addGate(GateKind::kInv, {a}, x);
  nl.addGate(GateKind::kNand2, {a, x}, y);
  const auto& fan_a = nl.fanout(a);
  ASSERT_EQ(fan_a.size(), 2u);
  EXPECT_EQ(fan_a[0].gate, 0u);
  EXPECT_EQ(fan_a[0].pin, 0);
  EXPECT_EQ(fan_a[1].gate, 1u);
  EXPECT_EQ(fan_a[1].pin, 0);
  EXPECT_EQ(nl.fanout(x).size(), 1u);
  EXPECT_EQ(nl.fanout(x)[0].pin, 1);
}

TEST(LogicNetlistTest, DffActsAsBoundary) {
  LogicNetlist nl;
  const NetId in = nl.addNet("in");
  const NetId d = nl.addNet("d");
  const NetId q = nl.addNet("q");
  const NetId out = nl.addNet("out");
  nl.markPrimaryInput(in);
  nl.addGate(GateKind::kInv, {in}, d);
  nl.addDff(d, q, "ff0");
  nl.addGate(GateKind::kInv, {q}, out);
  nl.markPrimaryOutput(out);
  nl.validate();
  EXPECT_EQ(nl.driverKind(q), DriverKind::kDffOutput);
  EXPECT_EQ(nl.dffLoadCount(d), 1);
  const auto sources = nl.sourceNets();
  ASSERT_EQ(sources.size(), 2u);  // PI + DFF q
  EXPECT_EQ(sources[0], in);
  EXPECT_EQ(sources[1], q);
  // The DFF boundary also breaks would-be cycles.
  LogicNetlist loop;
  const NetId lq = loop.addNet("q");
  const NetId ld = loop.addNet("d");
  loop.addGate(GateKind::kInv, {lq}, ld);
  loop.addDff(ld, lq);
  EXPECT_NO_THROW(loop.validate());
}

TEST(LogicNetlistTest, TopologicalOrderRespectsDependencies) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  nl.markPrimaryInput(a);
  const NetId b = nl.addNet("b");
  const NetId c = nl.addNet("c");
  const NetId d = nl.addNet("d");
  const GateId g_c = nl.addGate(GateKind::kNand2, {a, b}, c);
  const GateId g_b = nl.addGate(GateKind::kInv, {a}, b);
  const GateId g_d = nl.addGate(GateKind::kInv, {c}, d);
  const auto order = nl.topologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](GateId g) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == g) {
        return i;
      }
    }
    return order.size();
  };
  EXPECT_LT(pos(g_b), pos(g_c));
  EXPECT_LT(pos(g_c), pos(g_d));
}

TEST(LogicNetlistTest, CombinationalCycleDetected) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  const NetId b = nl.addNet("b");
  nl.addGate(GateKind::kInv, {a}, b);
  nl.addGate(GateKind::kInv, {b}, a);
  EXPECT_THROW(nl.topologicalOrder(), Error);
  EXPECT_THROW(nl.validate(), Error);
}

TEST(LogicNetlistTest, ValidateCatchesUndrivenInputs) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");  // never driven
  const NetId out = nl.addNet("out");
  nl.addGate(GateKind::kInv, {a}, out);
  EXPECT_THROW(nl.validate(), Error);
}

TEST(LogicNetlistTest, StatsComputeDepthAndFanout) {
  LogicNetlist nl;
  const NetId a = nl.addNet("a");
  nl.markPrimaryInput(a);
  NetId prev = a;
  for (int i = 0; i < 5; ++i) {
    const NetId next = nl.addNet("n" + std::to_string(i));
    nl.addGate(GateKind::kInv, {prev}, next);
    prev = next;
  }
  nl.markPrimaryOutput(prev);
  const NetlistStats stats = computeStats(nl);
  EXPECT_EQ(stats.gates, 5u);
  EXPECT_EQ(stats.logic_depth, 5);
  EXPECT_EQ(stats.max_fanout, 1);
  EXPECT_EQ(stats.primary_inputs, 1u);
  EXPECT_EQ(stats.primary_outputs, 1u);
}

}  // namespace
}  // namespace nanoleak::logic
