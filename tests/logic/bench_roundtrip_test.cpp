// Round-trip property of the .bench reader/writer: parse -> serialize ->
// reparse yields a structurally identical netlist that simulates
// identically, including DFF boundaries and wide-gate tree expansion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "logic/bench_io.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"

namespace nanoleak::logic {
namespace {

void expectSameStats(const LogicNetlist& a, const LogicNetlist& b) {
  const NetlistStats sa = computeStats(a);
  const NetlistStats sb = computeStats(b);
  EXPECT_EQ(sa.gates, sb.gates);
  EXPECT_EQ(sa.dffs, sb.dffs);
  EXPECT_EQ(sa.primary_inputs, sb.primary_inputs);
  EXPECT_EQ(sa.primary_outputs, sb.primary_outputs);
  EXPECT_EQ(sa.nets, sb.nets);
  EXPECT_EQ(sa.max_fanout, sb.max_fanout);
  EXPECT_DOUBLE_EQ(sa.mean_fanout, sb.mean_fanout);
  EXPECT_EQ(sa.logic_depth, sb.logic_depth);
}

void expectSameSimulation(const LogicNetlist& a, const LogicNetlist& b,
                          int patterns) {
  const LogicSimulator sim_a(a);
  const LogicSimulator sim_b(b);
  ASSERT_EQ(sim_a.sourceCount(), sim_b.sourceCount());
  Rng rng(20050307);
  for (int p = 0; p < patterns; ++p) {
    const std::vector<bool> pattern = randomPattern(sim_a.sourceCount(), rng);
    const std::vector<bool> va = sim_a.simulate(pattern);
    const std::vector<bool> vb = sim_b.simulate(pattern);
    // Compare observable nets by NAME (net ids may differ between parses).
    for (NetId net : a.primaryOutputs()) {
      const std::string& name = a.netName(net);
      EXPECT_EQ(va[net], vb[b.net(name)]) << "output " << name;
    }
    for (const Dff& dff : a.dffs()) {
      const std::string& name = a.netName(dff.d);
      EXPECT_EQ(va[dff.d], vb[b.net(name)]) << "dff d-pin " << name;
    }
  }
}

void expectRoundTrip(const LogicNetlist& original, int patterns = 16) {
  const std::string text = toBenchText(original);
  const LogicNetlist reparsed = parseBenchString(text);
  expectSameStats(original, reparsed);
  expectSameSimulation(original, reparsed, patterns);
  // Serialization is a fixed point: writing the reparsed netlist
  // reproduces the text byte for byte.
  EXPECT_EQ(toBenchText(reparsed), text);
}

TEST(BenchRoundTripTest, C17) { expectRoundTrip(c17()); }

TEST(BenchRoundTripTest, RippleCarryAdder) {
  expectRoundTrip(rippleCarryAdder(4));
}

TEST(BenchRoundTripTest, SequentialCircuitWithDffs) {
  const char* text = R"(# s27-like toy
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G6)
G11 = NOR(G5, G2)
G16 = XOR(G1, G11)
G17 = NAND(G10, G16)
)";
  const LogicNetlist netlist = parseBenchString(text);
  ASSERT_EQ(netlist.dffs().size(), 2u);
  expectRoundTrip(netlist);
}

TEST(BenchRoundTripTest, WideGatesExpandAndStayStable) {
  const char* wide = R"(INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
INPUT(g)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
y = NAND(a, b, c, d, e, f, g)
z = OR(a, b, c, d, e, f, g)
w = XOR(a, b, c, d, e)
)";
  const LogicNetlist netlist = parseBenchString(wide);
  // 7-wide NAND becomes an AND tree plus a root inverter; every emitted
  // cell is at most 4-ary.
  for (const Gate& gate : netlist.gates()) {
    EXPECT_LE(gate.inputs.size(), 4u);
  }
  EXPECT_GT(netlist.gateCount(), 3u);
  expectRoundTrip(netlist, 32);
}

TEST(BenchRoundTripTest, DffHeavyShiftRegisterCircuit) {
  // A 16-stage LFSR-style register chain exercises DFF ordering in the
  // writer (DFFs are emitted before gates) and name-based reassociation.
  std::string text = "INPUT(load)\nOUTPUT(parity)\nOUTPUT(any)\n";
  text += "fb = XOR(q15, q13)\n";
  text += "d0 = OR(fb, load)\n";
  for (int i = 0; i < 16; ++i) {
    text += "q" + std::to_string(i) + " = DFF(d" + std::to_string(i) + ")\n";
    if (i > 0) {
      text += "d" + std::to_string(i) + " = BUFF(q" + std::to_string(i - 1) +
              ")\n";
    }
  }
  text += "parity = XOR(q0, q8)\n";
  text += "any = OR(q0, q1, q2, q3, q4, q5, q6, q7, q8)\n";  // wide OR
  const LogicNetlist netlist = parseBenchString(text);
  ASSERT_EQ(netlist.dffs().size(), 16u);
  expectRoundTrip(netlist, 8);
}

}  // namespace
}  // namespace nanoleak::logic
