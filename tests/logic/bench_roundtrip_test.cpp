// Round-trip property of the .bench reader/writer: parse -> serialize ->
// reparse yields a structurally identical netlist that simulates
// identically, including DFF boundaries and wide-gate tree expansion.
// The seeded fuzz below extends the property to randomized netlists and
// adds leakage equivalence through the estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/bench_io.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"

namespace nanoleak::logic {
namespace {

void expectSameStats(const LogicNetlist& a, const LogicNetlist& b) {
  const NetlistStats sa = computeStats(a);
  const NetlistStats sb = computeStats(b);
  EXPECT_EQ(sa.gates, sb.gates);
  EXPECT_EQ(sa.dffs, sb.dffs);
  EXPECT_EQ(sa.primary_inputs, sb.primary_inputs);
  EXPECT_EQ(sa.primary_outputs, sb.primary_outputs);
  EXPECT_EQ(sa.nets, sb.nets);
  EXPECT_EQ(sa.max_fanout, sb.max_fanout);
  EXPECT_DOUBLE_EQ(sa.mean_fanout, sb.mean_fanout);
  EXPECT_EQ(sa.logic_depth, sb.logic_depth);
}

void expectSameSimulation(const LogicNetlist& a, const LogicNetlist& b,
                          int patterns) {
  const LogicSimulator sim_a(a);
  const LogicSimulator sim_b(b);
  ASSERT_EQ(sim_a.sourceCount(), sim_b.sourceCount());
  Rng rng(20050307);
  for (int p = 0; p < patterns; ++p) {
    const std::vector<bool> pattern = randomPattern(sim_a.sourceCount(), rng);
    const std::vector<bool> va = sim_a.simulate(pattern);
    const std::vector<bool> vb = sim_b.simulate(pattern);
    // Compare observable nets by NAME (net ids may differ between parses).
    for (NetId net : a.primaryOutputs()) {
      const std::string& name = a.netName(net);
      EXPECT_EQ(va[net], vb[b.net(name)]) << "output " << name;
    }
    for (const Dff& dff : a.dffs()) {
      const std::string& name = a.netName(dff.d);
      EXPECT_EQ(va[dff.d], vb[b.net(name)]) << "dff d-pin " << name;
    }
  }
}

void expectRoundTrip(const LogicNetlist& original, int patterns = 16) {
  const std::string text = toBenchText(original);
  const LogicNetlist reparsed = parseBenchString(text);
  expectSameStats(original, reparsed);
  expectSameSimulation(original, reparsed, patterns);
  // Serialization is a fixed point: writing the reparsed netlist
  // reproduces the text byte for byte.
  EXPECT_EQ(toBenchText(reparsed), text);
}

// --- Seeded random-netlist fuzz --------------------------------------------

/// Emits random .bench text over the full bench-spelled primitive set:
/// narrow cells, wide gates (5-8 inputs, exercising tree decomposition),
/// DFFs (including DFF-to-DFF chains), and shared fanout. Every referenced
/// signal is driven, so the parse always validates.
std::string randomBenchText(Rng& rng) {
  const int n_pi = 3 + static_cast<int>(rng.uniformInt(6));     // 3..8
  const int n_dff = static_cast<int>(rng.uniformInt(4));        // 0..3
  const int n_gates = 6 + static_cast<int>(rng.uniformInt(20));  // 6..25

  std::string text;
  std::vector<std::string> driven;
  for (int i = 0; i < n_pi; ++i) {
    const std::string name = "pi" + std::to_string(i);
    text += "INPUT(" + name + ")\n";
    driven.push_back(name);
  }
  // DFF outputs are usable immediately; the DFF statements themselves are
  // emitted last to exercise forward references in the parser.
  for (int i = 0; i < n_dff; ++i) {
    driven.push_back("q" + std::to_string(i));
  }

  const char* kOps[] = {"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT",
                        "BUFF"};
  std::vector<std::string> gate_outputs;
  for (int g = 0; g < n_gates; ++g) {
    const std::string op = kOps[rng.uniformInt(8)];
    std::size_t arity;
    if (op == "NOT" || op == "BUFF") {
      arity = 1;
    } else if (rng.bernoulli(0.2) && op != "XNOR") {
      arity = 5 + rng.uniformInt(4);  // wide: 5..8, decomposed into trees
    } else if (op == "XOR" || op == "XNOR") {
      arity = 2;
    } else {
      arity = 2 + rng.uniformInt(3);  // 2..4
    }
    const std::string out = "g" + std::to_string(g);
    text += out + " = " + op + "(";
    for (std::size_t pin = 0; pin < arity; ++pin) {
      text += (pin == 0 ? "" : ", ") + driven[rng.uniformInt(driven.size())];
    }
    text += ")\n";
    driven.push_back(out);
    gate_outputs.push_back(out);
  }
  for (int i = 0; i < n_dff; ++i) {
    text += "q" + std::to_string(i) + " = DFF(" +
            driven[rng.uniformInt(driven.size())] + ")\n";
  }
  const int n_po = 1 + static_cast<int>(rng.uniformInt(3));
  for (int i = 0; i < n_po; ++i) {
    text += "OUTPUT(" + gate_outputs[rng.uniformInt(gate_outputs.size())] +
            ")\n";
  }
  return text;
}

/// Library covering every kind randomBenchText can produce (the tree
/// decomposition only emits AND/OR/INV/BUF/XOR2 beyond the narrow forms).
/// A coarse loading grid keeps characterization cheap; round-trip
/// equivalence only needs both netlists to read the same tables.
const core::LeakageLibrary& fuzzLibrary() {
  static const core::LeakageLibrary library = [] {
    using gates::GateKind;
    core::CharacterizationOptions options;
    options.kinds = {GateKind::kInv,   GateKind::kBuf,   GateKind::kNand2,
                     GateKind::kNand3, GateKind::kNand4, GateKind::kNor2,
                     GateKind::kNor3,  GateKind::kNor4,  GateKind::kAnd2,
                     GateKind::kAnd3,  GateKind::kAnd4,  GateKind::kOr2,
                     GateKind::kOr3,   GateKind::kOr4,   GateKind::kXor2,
                     GateKind::kXnor2};
    options.loading_grid = {0.0, 1.0e-6, 3.0e-6, 6.0e-6};
    options.store_pin_current_grids = false;
    return core::Characterizer(device::defaultTechnology(), options)
        .characterize();
  }();
  return library;
}

/// Leakage equivalence: the reparsed netlist estimates the same totals.
/// toBenchText emits gates in insertion order and the reparse re-adds
/// them in that order, so sums accumulate identically and the totals
/// must match to the last bit.
void expectSameLeakage(const LogicNetlist& a, const LogicNetlist& b,
                       int patterns, Rng& rng) {
  const core::LeakageEstimator est_a(a, fuzzLibrary());
  const core::LeakageEstimator est_b(b, fuzzLibrary());
  ASSERT_EQ(est_a.sourceCount(), est_b.sourceCount());
  for (int p = 0; p < patterns; ++p) {
    const std::vector<bool> pattern =
        randomPattern(est_a.sourceCount(), rng);
    const auto ra = est_a.estimate(pattern).total;
    const auto rb = est_b.estimate(pattern).total;
    EXPECT_EQ(ra.subthreshold, rb.subthreshold) << "pattern " << p;
    EXPECT_EQ(ra.gate, rb.gate) << "pattern " << p;
    EXPECT_EQ(ra.btbt, rb.btbt) << "pattern " << p;
  }
}

TEST(BenchRoundTripTest, SeededRandomNetlistsRoundTripWithLeakage) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x9e3779b9ULL);
    const std::string text = randomBenchText(rng);
    const LogicNetlist original = parseBenchString(text);
    // Round trip: structure, simulation, and serialization fixed point.
    expectRoundTrip(original, 8);
    // Leakage equivalence through the estimator.
    const LogicNetlist reparsed = parseBenchString(toBenchText(original));
    expectSameLeakage(original, reparsed, 4, rng);
  }
}

TEST(BenchRoundTripTest, SeededRandomNetlistsAlwaysContainWideAndDffCases) {
  // Guard the fuzz generator itself: across the seed range it must
  // exercise tree decomposition (gates only up to 4-ary after parsing,
  // some circuits with many expansion cells) and DFF boundaries.
  bool saw_expansion = false;
  bool saw_dff = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 0x9e3779b9ULL);
    const std::string text = randomBenchText(rng);
    const LogicNetlist netlist = parseBenchString(text);
    for (const Gate& gate : netlist.gates()) {
      EXPECT_LE(gate.inputs.size(), 4u);
      // Expansion cells drive generated "<root>$xN" nets.
      if (netlist.netName(gate.output).find("$x") != std::string::npos) {
        saw_expansion = true;
      }
    }
    saw_dff = saw_dff || !netlist.dffs().empty();
  }
  EXPECT_TRUE(saw_expansion);
  EXPECT_TRUE(saw_dff);
}

TEST(BenchRoundTripTest, C17) { expectRoundTrip(c17()); }

TEST(BenchRoundTripTest, RippleCarryAdder) {
  expectRoundTrip(rippleCarryAdder(4));
}

TEST(BenchRoundTripTest, SequentialCircuitWithDffs) {
  const char* text = R"(# s27-like toy
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G6)
G11 = NOR(G5, G2)
G16 = XOR(G1, G11)
G17 = NAND(G10, G16)
)";
  const LogicNetlist netlist = parseBenchString(text);
  ASSERT_EQ(netlist.dffs().size(), 2u);
  expectRoundTrip(netlist);
}

TEST(BenchRoundTripTest, WideGatesExpandAndStayStable) {
  const char* wide = R"(INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
INPUT(g)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
y = NAND(a, b, c, d, e, f, g)
z = OR(a, b, c, d, e, f, g)
w = XOR(a, b, c, d, e)
)";
  const LogicNetlist netlist = parseBenchString(wide);
  // 7-wide NAND becomes an AND tree plus a root inverter; every emitted
  // cell is at most 4-ary.
  for (const Gate& gate : netlist.gates()) {
    EXPECT_LE(gate.inputs.size(), 4u);
  }
  EXPECT_GT(netlist.gateCount(), 3u);
  expectRoundTrip(netlist, 32);
}

TEST(BenchRoundTripTest, DffHeavyShiftRegisterCircuit) {
  // A 16-stage LFSR-style register chain exercises DFF ordering in the
  // writer (DFFs are emitted before gates) and name-based reassociation.
  std::string text = "INPUT(load)\nOUTPUT(parity)\nOUTPUT(any)\n";
  text += "fb = XOR(q15, q13)\n";
  text += "d0 = OR(fb, load)\n";
  for (int i = 0; i < 16; ++i) {
    text += "q" + std::to_string(i) + " = DFF(d" + std::to_string(i) + ")\n";
    if (i > 0) {
      text += "d" + std::to_string(i) + " = BUFF(q" + std::to_string(i - 1) +
              ")\n";
    }
  }
  text += "parity = XOR(q0, q8)\n";
  text += "any = OR(q0, q1, q2, q3, q4, q5, q6, q7, q8)\n";  // wide OR
  const LogicNetlist netlist = parseBenchString(text);
  ASSERT_EQ(netlist.dffs().size(), 16u);
  expectRoundTrip(netlist, 8);
}

}  // namespace
}  // namespace nanoleak::logic
