// The paper's headline quantitative claims, asserted as tests. Windows are
// deliberately generous: our substrate is a compact-model simulator, not
// the authors' MEDICI/HSPICE testbed (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "core/loading_analyzer.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"
#include "util/units.h"

namespace nanoleak {
namespace {

using core::LeakageEstimator;
using core::LeakageLibrary;

const LeakageLibrary& lib() {
  static const LeakageLibrary library = [] {
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    return core::Characterizer(device::defaultTechnology(), options)
        .characterize();
  }();
  return library;
}

TEST(PaperClaimsTest, Section7GateLevelLoadingEffectIsSingleDigitPercent) {
  // "the loading effect modifies the leakage of a logic gate by 8-10%".
  // At a realistic heavy loading point (fanout ~6 both sides), the
  // combined effect lands in the single-digit-to-low-teens range.
  core::LoadingAnalyzer an(gates::GateKind::kInv, {false},
                           device::defaultTechnology());
  const double pct =
      an.combinedLoadingEffect(nA(2000.0), nA(2000.0)).total_pct;
  EXPECT_GT(pct, 3.0);
  EXPECT_LT(pct, 20.0);
}

TEST(PaperClaimsTest, Section7CircuitLevelEffectIsAFewPercent) {
  // "the net change in the overall leakage due to loading effect is about
  // 5% in large circuits".
  const logic::LogicNetlist nl =
      logic::synthesizeIscasLike(logic::iscasSpec("s1196"), 2024);
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicSimulator sim(nl);
  Rng rng(31);
  double sum_pct = 0.0;
  const int vectors = 3;
  for (int i = 0; i < vectors; ++i) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const double golden =
        core::goldenLeakage(nl, tech, vec).total.total();
    const double isolated = core::isolatedSumLeakage(nl, tech, vec).total();
    sum_pct += 100.0 * (golden - isolated) / isolated;
  }
  const double avg_pct = sum_pct / vectors;
  EXPECT_GT(avg_pct, 1.5);
  EXPECT_LT(avg_pct, 12.0);
}

TEST(PaperClaimsTest, Fig12bComponentOrdering) {
  // Subthreshold shows the largest loading-induced variation; gate and
  // BTBT move the other way and are smaller in magnitude.
  const logic::LogicNetlist nl =
      logic::synthesizeIscasLike(logic::iscasSpec("s838"), 7);
  const LeakageEstimator with(nl, lib());
  core::EstimatorOptions off;
  off.with_loading = false;
  const LeakageEstimator without(nl, lib(), off);
  const logic::LogicSimulator sim(nl);
  Rng rng(41);
  const auto vec = logic::randomPattern(sim.sourceCount(), rng);
  const auto w = with.estimate(vec).total;
  const auto wo = without.estimate(vec).total;
  const double sub_pct =
      100.0 * (w.subthreshold - wo.subthreshold) / wo.subthreshold;
  const double gate_pct = 100.0 * (w.gate - wo.gate) / wo.gate;
  const double btbt_pct = 100.0 * (w.btbt - wo.btbt) / wo.btbt;
  EXPECT_GT(sub_pct, 2.0);
  EXPECT_LT(gate_pct, 0.0);
  EXPECT_LT(btbt_pct, 0.0);
  EXPECT_GT(sub_pct, std::abs(gate_pct));
  EXPECT_GT(sub_pct, std::abs(btbt_pct));
}

TEST(PaperClaimsTest, Section6LoadingCanChangeTheMinimumLeakageVector) {
  // Input-vector control: rank vectors by leakage with and without
  // loading; the orderings must not be identical on a circuit where
  // loading matters (the paper's IVC observation).
  const logic::LogicNetlist nl = logic::rippleCarryAdder(4);
  const LeakageEstimator with(nl, lib());
  core::EstimatorOptions off;
  off.with_loading = false;
  const LeakageEstimator without(nl, lib(), off);
  const logic::LogicSimulator sim(nl);
  Rng rng(51);
  std::vector<std::pair<double, double>> totals;  // (with, without)
  for (int i = 0; i < 64; ++i) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    totals.emplace_back(with.estimate(vec).total.total(),
                        without.estimate(vec).total.total());
  }
  // Find the argmin under both metrics.
  std::size_t argmin_with = 0;
  std::size_t argmin_without = 0;
  for (std::size_t i = 1; i < totals.size(); ++i) {
    if (totals[i].first < totals[argmin_with].first) {
      argmin_with = i;
    }
    if (totals[i].second < totals[argmin_without].second) {
      argmin_without = i;
    }
  }
  // The rankings correlate but need not agree; assert they are not
  // trivially identical across the whole set OR the argmin moved.
  bool any_rank_change = argmin_with != argmin_without;
  if (!any_rank_change) {
    for (std::size_t i = 0; i < totals.size() && !any_rank_change; ++i) {
      for (std::size_t j = i + 1; j < totals.size(); ++j) {
        const bool order_with = totals[i].first < totals[j].first;
        const bool order_without = totals[i].second < totals[j].second;
        if (order_with != order_without) {
          any_rank_change = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_rank_change);
}

TEST(PaperClaimsTest, Section5TemperatureAmplifiesSubthresholdLoading) {
  // Fig. 9: the subthreshold contribution to the overall loading effect
  // grows strongly with temperature (its share of the total explodes),
  // while the total moves much less (component cancellation). The paper
  // plots the MEDICI 50 nm device.
  auto contribution = [&](double celsius) {
    device::Technology tech = device::mediciTechnology();
    tech.temperature_k = celsiusToKelvin(celsius);
    core::LoadingAnalyzer an(gates::GateKind::kInv, {false}, tech);
    return an.combinedLoadingContribution(nA(2000.0), nA(2000.0));
  };
  const core::LoadingEffect cold = contribution(0.0);
  const core::LoadingEffect hot = contribution(100.0);
  EXPECT_GT(hot.subthreshold_pct, cold.subthreshold_pct);
  EXPECT_GT(hot.subthreshold_pct, 1.5 * cold.subthreshold_pct);
  // Total changes less than the subthreshold contribution when hot.
  EXPECT_LT(std::abs(hot.total_pct), hot.subthreshold_pct + 1.0);
}

TEST(PaperClaimsTest, EstimatorTracksGoldenAcrossCircuitsTempsAndFlavours) {
  // The paper validates the Fig. 13 estimator against full HSPICE solves
  // across circuits, temperatures, and device flavours and reports errors
  // of a few percent. Assert the repo-wide bound (5% on the total, the
  // same window end_to_end_test pins at the default corner) on every
  // built-in generator family at two temperatures and two flavours.
  struct Case {
    const char* name;
    logic::LogicNetlist netlist;
  };
  const std::vector<Case> circuits = [] {
    std::vector<Case> out;
    out.push_back({"inv_chain8", logic::inverterChain(8)});
    out.push_back({"fanout_star6", logic::fanoutStar(6)});
    out.push_back({"c17", logic::c17()});
    out.push_back({"rca4", logic::rippleCarryAdder(4)});
    out.push_back({"mult22", logic::arrayMultiplier(2)});
    return out;
  }();
  Rng rng(20050307);
  double error_sum = 0.0;
  int cases = 0;
  for (const device::Technology& base :
       {device::defaultTechnology(), device::gateDominatedTechnology()}) {
    for (const double temperature_k : {300.0, 360.0}) {
      device::Technology tech = base;
      tech.temperature_k = temperature_k;
      core::CharacterizationOptions options;
      options.kinds = core::generatorGateKinds();
      const LeakageLibrary library =
          core::Characterizer(tech, options).characterize();
      for (const Case& test_case : circuits) {
        const logic::LogicSimulator sim(test_case.netlist);
        const auto vec = logic::randomPattern(sim.sourceCount(), rng);
        const double golden =
            core::goldenLeakage(test_case.netlist, tech, vec).total.total();
        const double estimated =
            LeakageEstimator(test_case.netlist, library)
                .estimate(vec)
                .total.total();
        const double error = std::abs(estimated - golden) / golden;
        error_sum += error;
        ++cases;
        // Worst corner observed: the heavily loaded fanout star on the
        // gate-dominated flavour when hot (~5.4%); everything else sits
        // under 5%.
        EXPECT_LT(error, 0.065)
            << test_case.name << " @ " << tech.nmos.name << " "
            << temperature_k << "K: estimated " << estimated << " vs golden "
            << golden;
      }
    }
  }
  // On average the estimator stays well inside the single-digit window.
  EXPECT_LT(error_sum / cases, 0.035);
}

TEST(PaperClaimsTest, OneLevelPropagationSufficesOnCircuits) {
  // Section 6: "propagation of the loading effect beyond one level is
  // negligible" - iterating the estimator changes totals by well under 1%.
  const logic::LogicNetlist nl =
      logic::synthesizeIscasLike(logic::iscasSpec("s838"), 3);
  core::EstimatorOptions one;
  one.propagation_iterations = 1;
  core::EstimatorOptions deep;
  deep.propagation_iterations = 4;
  const logic::LogicSimulator sim(nl);
  Rng rng(61);
  const auto vec = logic::randomPattern(sim.sourceCount(), rng);
  const double l1 =
      LeakageEstimator(nl, lib(), one).estimate(vec).total.total();
  const double l4 =
      LeakageEstimator(nl, lib(), deep).estimate(vec).total.total();
  EXPECT_LT(std::abs(l4 - l1) / l1, 0.005);
}

}  // namespace
}  // namespace nanoleak
