// End-to-end flows a downstream user would run: parse/generate a circuit,
// characterize a library, estimate, and validate against the full solve.
#include <gtest/gtest.h>

#include <chrono>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "core/golden.h"
#include "logic/bench_io.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"

namespace nanoleak {
namespace {

using core::CharacterizationOptions;
using core::Characterizer;
using core::EstimateResult;
using core::GoldenResult;
using core::LeakageEstimator;
using core::LeakageLibrary;

const LeakageLibrary& lib() {
  static const LeakageLibrary library = [] {
    CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    return Characterizer(device::defaultTechnology(), options).characterize();
  }();
  return library;
}

TEST(EndToEndTest, BenchFileToLeakageReport) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NAND(a, b)
n2 = NOR(b, c)
n3 = XOR(n1, n2)
y = NOT(n3)
)";
  const logic::LogicNetlist nl = logic::parseBenchString(text);
  const LeakageEstimator est(nl, lib());
  const EstimateResult r = est.estimate({false, true, false});
  EXPECT_EQ(r.per_gate.size(), 4u);
  EXPECT_GT(r.total.total(), 0.0);
  const GoldenResult golden =
      core::goldenLeakage(nl, device::defaultTechnology(),
                          {false, true, false});
  EXPECT_NEAR(r.total.total(), golden.total.total(),
              0.05 * golden.total.total());
}

TEST(EndToEndTest, LibraryRoundTripPreservesEstimates) {
  const logic::LogicNetlist nl = logic::arrayMultiplier(4);
  const std::string path = ::testing::TempDir() + "/e2e.nlib";
  lib().saveFile(path);
  const LeakageLibrary reloaded = LeakageLibrary::loadFile(path);
  const LeakageEstimator a(nl, lib());
  const LeakageEstimator b(nl, reloaded);
  std::vector<bool> vec(8, true);
  EXPECT_DOUBLE_EQ(a.estimate(vec).total.total(),
                   b.estimate(vec).total.total());
}

class CircuitSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CircuitSweep, EstimatorTracksGoldenOnRandomVectors) {
  const std::string name = GetParam();
  logic::LogicNetlist nl = [&]() {
    if (name == "c17") return logic::c17();
    if (name == "adder8") return logic::rippleCarryAdder(8);
    if (name == "mult4") return logic::arrayMultiplier(4);
    if (name == "alu8") return logic::alu8();
    return logic::synthesizeIscasLike(logic::iscasSpec(name), 1234);
  }();
  const device::Technology tech = device::defaultTechnology();
  const LeakageEstimator est(nl, lib());
  const logic::LogicSimulator sim(nl);
  Rng rng(555);
  for (int trial = 0; trial < 2; ++trial) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const GoldenResult golden = core::goldenLeakage(nl, tech, vec);
    const EstimateResult estimate = est.estimate(vec);
    const double err =
        std::abs(estimate.total.total() - golden.total.total()) /
        golden.total.total();
    EXPECT_LT(err, 0.05) << name << " trial " << trial;
    // Component-wise agreement within 12 %.
    EXPECT_NEAR(estimate.total.subthreshold, golden.total.subthreshold,
                0.12 * golden.total.subthreshold);
    EXPECT_NEAR(estimate.total.gate, golden.total.gate,
                0.12 * golden.total.gate);
    EXPECT_NEAR(estimate.total.btbt, golden.total.btbt,
                0.12 * golden.total.btbt);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, CircuitSweep,
                         ::testing::Values("c17", "adder8", "mult4", "alu8",
                                           "s838"));

TEST(EndToEndTest, EstimatorIsMuchFasterThanGolden) {
  const logic::LogicNetlist nl = logic::arrayMultiplier(6);
  const device::Technology tech = device::defaultTechnology();
  const LeakageEstimator est(nl, lib());
  const logic::LogicSimulator sim(nl);
  Rng rng(9);
  const auto vec = logic::randomPattern(sim.sourceCount(), rng);

  const auto t0 = std::chrono::steady_clock::now();
  (void)core::goldenLeakage(nl, tech, vec);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    (void)est.estimate(vec);
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double golden_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double est_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count() / 10.0;
  EXPECT_GT(golden_ms / est_ms, 20.0);  // typically 100-300x
}

}  // namespace
}  // namespace nanoleak
