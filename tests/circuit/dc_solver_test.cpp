#include "circuit/dc_solver.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "circuit/leakage_meter.h"
#include "device/device_params.h"
#include "gates/gate_builder.h"
#include "util/error.h"

namespace nanoleak::circuit {
namespace {

device::Technology tech() { return device::defaultTechnology(); }

/// Builds an inverter driven by fixed input; returns (netlist, out node).
struct InverterFixture {
  Netlist netlist;
  NodeId vdd;
  NodeId gnd;
  NodeId in;
  NodeId out;
};

InverterFixture makeInverter(bool input_high) {
  InverterFixture fx;
  fx.vdd = fx.netlist.addNode("VDD");
  fx.gnd = fx.netlist.addNode("GND");
  fx.in = fx.netlist.addNode("in");
  fx.out = fx.netlist.addNode("out");
  const device::Technology t = tech();
  fx.netlist.fixVoltage(fx.vdd, t.vdd);
  fx.netlist.fixVoltage(fx.gnd, 0.0);
  fx.netlist.fixVoltage(fx.in, input_high ? t.vdd : 0.0);
  gates::GateNetlistBuilder builder(fx.netlist, t, fx.vdd, fx.gnd);
  const std::array<NodeId, 1> ins{fx.in};
  builder.instantiate(gates::GateKind::kInv, ins, fx.out, 0);
  return fx;
}

TEST(DcSolverTest, EmptyNetlistConverges) {
  Netlist netlist;
  netlist.addNode("only");
  netlist.fixVoltage(0, 1.0);
  const Solution s = DcSolver().solve(netlist);
  EXPECT_TRUE(s.converged);
  EXPECT_DOUBLE_EQ(s.voltages[0], 1.0);
}

TEST(DcSolverTest, RejectsBadBracket) {
  SolverOptions options;
  options.bracket_lo = 1.0;
  options.bracket_hi = 0.0;
  EXPECT_THROW(DcSolver{options}, Error);
}

TEST(DcSolverTest, RejectsBadGuessSize) {
  Netlist netlist;
  netlist.addNode("a");
  const std::vector<double> wrong_size(3, 0.0);
  EXPECT_THROW(DcSolver().solve(netlist, wrong_size), Error);
}

TEST(DcSolverTest, InverterOutputNearRail) {
  for (bool input_high : {false, true}) {
    InverterFixture fx = makeInverter(input_high);
    const Solution s = DcSolver().solve(fx.netlist);
    ASSERT_TRUE(s.converged);
    const double vout = s.voltages[fx.out];
    if (input_high) {
      // Output low: pulled to ground, lifted only by leakage through the
      // off PMOS (millivolts).
      EXPECT_LT(vout, 0.03);
      EXPECT_GE(vout, -0.001);
    } else {
      EXPECT_GT(vout, tech().vdd - 0.03);
      EXPECT_LE(vout, tech().vdd + 0.001);
    }
  }
}

TEST(DcSolverTest, KclHoldsAtSolution) {
  InverterFixture fx = makeInverter(false);
  SolverOptions options;
  const Solution s = DcSolver(options).solve(fx.netlist);
  ASSERT_TRUE(s.converged);
  const double residual =
      DcSolver::nodeResidual(fx.netlist, s.voltages, fx.out, options);
  EXPECT_LT(std::abs(residual), options.tol_current);
  EXPECT_LT(s.max_residual, options.tol_current);
}

TEST(DcSolverTest, CurrentSourceShiftsNode) {
  // Injecting current into the inverter's (high) output must droop it...
  InverterFixture fx = makeInverter(false);
  const SourceId src = fx.netlist.addCurrentSource(fx.out, 0.0);
  const Solution base = DcSolver().solve(fx.netlist);
  ASSERT_TRUE(base.converged);
  fx.netlist.setCurrentSource(src, -3e-6);  // draw 3 uA out
  const Solution loaded = DcSolver().solve(fx.netlist);
  ASSERT_TRUE(loaded.converged);
  EXPECT_LT(loaded.voltages[fx.out], base.voltages[fx.out]);
  // ... by roughly I*Ron (kilo-ohm class): between 1 and 40 mV.
  const double droop = base.voltages[fx.out] - loaded.voltages[fx.out];
  EXPECT_GT(droop, 1e-3);
  EXPECT_LT(droop, 4e-2);
}

TEST(DcSolverTest, SolvesSeriesStackAllOff) {
  // NAND3 with all inputs 0: two floating stack nodes settle between the
  // rails near ground (stack effect).
  Netlist netlist;
  const NodeId vdd = netlist.addNode("VDD");
  const NodeId gnd = netlist.addNode("GND");
  const device::Technology t = tech();
  netlist.fixVoltage(vdd, t.vdd);
  netlist.fixVoltage(gnd, 0.0);
  std::array<NodeId, 3> ins{};
  for (int i = 0; i < 3; ++i) {
    ins[static_cast<std::size_t>(i)] =
        netlist.addNode("in" + std::to_string(i));
    netlist.fixVoltage(ins[static_cast<std::size_t>(i)], 0.0);
  }
  const NodeId out = netlist.addNode("out");
  gates::GateNetlistBuilder builder(netlist, t, vdd, gnd);
  builder.instantiate(gates::GateKind::kNand3, ins, out, 0);
  const Solution s = DcSolver().solve(netlist);
  ASSERT_TRUE(s.converged);
  // Stack nodes are the two non-out free nodes; all must lie within rails.
  for (NodeId node = 0; node < netlist.nodeCount(); ++node) {
    if (!netlist.isFixed(node)) {
      EXPECT_GT(s.voltages[node], -0.01);
      EXPECT_LT(s.voltages[node], t.vdd + 0.01);
    }
  }
  EXPECT_GT(s.voltages[out], t.vdd - 0.05);
}

TEST(DcSolverTest, SolvesPathologicalMiddleOnStack) {
  // NAND3 vector 010: the two stack nodes couple through an ON middle
  // transistor - the case that motivated cluster (block Newton) solving.
  Netlist netlist;
  const NodeId vdd = netlist.addNode("VDD");
  const NodeId gnd = netlist.addNode("GND");
  const device::Technology t = tech();
  netlist.fixVoltage(vdd, t.vdd);
  netlist.fixVoltage(gnd, 0.0);
  std::array<NodeId, 3> ins{};
  const std::array<bool, 3> vec{false, true, false};
  for (int i = 0; i < 3; ++i) {
    ins[static_cast<std::size_t>(i)] =
        netlist.addNode("in" + std::to_string(i));
    netlist.fixVoltage(ins[static_cast<std::size_t>(i)],
                       vec[static_cast<std::size_t>(i)] ? t.vdd : 0.0);
  }
  const NodeId out = netlist.addNode("out");
  gates::GateNetlistBuilder builder(netlist, t, vdd, gnd);
  builder.instantiate(gates::GateKind::kNand3, ins, out, 0,
                      std::span<const bool>(vec.data(), 3));
  std::vector<double> seed(netlist.nodeCount(), 0.0);
  seed[vdd] = t.vdd;
  seed[out] = t.vdd;
  for (const auto& [node, voltage] : builder.seeds()) {
    seed[node] = voltage;
  }
  const Solution s = DcSolver().solve(netlist, seed);
  ASSERT_TRUE(s.converged);
  EXPECT_LT(s.sweeps, 50u);
}

TEST(DcSolverTest, DeterministicAcrossRuns) {
  InverterFixture a = makeInverter(true);
  InverterFixture b = makeInverter(true);
  const Solution sa = DcSolver().solve(a.netlist);
  const Solution sb = DcSolver().solve(b.netlist);
  ASSERT_TRUE(sa.converged);
  ASSERT_TRUE(sb.converged);
  for (std::size_t i = 0; i < sa.voltages.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa.voltages[i], sb.voltages[i]);
  }
}

}  // namespace
}  // namespace nanoleak::circuit
