#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "device/device_params.h"
#include "util/error.h"

namespace nanoleak::circuit {
namespace {

device::Mosfet unitN() { return device::Mosfet(device::d25SNmos(), 100e-9); }

TEST(NetlistTest, NodesAndNames) {
  Netlist netlist;
  const NodeId a = netlist.addNode("a");
  const NodeId b = netlist.addNode("b");
  EXPECT_EQ(netlist.nodeCount(), 2u);
  EXPECT_EQ(netlist.nodeName(a), "a");
  EXPECT_EQ(netlist.nodeName(b), "b");
  EXPECT_THROW(netlist.nodeName(5), Error);
}

TEST(NetlistTest, FixedVoltages) {
  Netlist netlist;
  const NodeId vdd = netlist.addNode("vdd");
  const NodeId x = netlist.addNode("x");
  netlist.fixVoltage(vdd, 1.0);
  EXPECT_TRUE(netlist.isFixed(vdd));
  EXPECT_FALSE(netlist.isFixed(x));
  EXPECT_DOUBLE_EQ(netlist.fixedVoltage(vdd), 1.0);
  EXPECT_THROW(netlist.fixedVoltage(x), Error);
}

TEST(NetlistTest, AddMosfetValidatesNodes) {
  Netlist netlist;
  const NodeId a = netlist.addNode("a");
  EXPECT_THROW(netlist.addMosfet(unitN(), a, a, a, 7), Error);
  const DeviceId id = netlist.addMosfet(unitN(), a, a, a, a, 3);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(netlist.deviceCount(), 1u);
  EXPECT_EQ(netlist.devices()[0].owner, 3);
}

TEST(NetlistTest, CurrentSources) {
  Netlist netlist;
  const NodeId a = netlist.addNode("a");
  const NodeId b = netlist.addNode("b");
  const SourceId s1 = netlist.addCurrentSource(a, 1e-6);
  netlist.addCurrentSource(a, 2e-6);
  netlist.addCurrentSource(b, -5e-7);
  EXPECT_DOUBLE_EQ(netlist.injectedCurrent(a), 3e-6);
  EXPECT_DOUBLE_EQ(netlist.injectedCurrent(b), -5e-7);
  netlist.setCurrentSource(s1, 0.0);
  EXPECT_DOUBLE_EQ(netlist.injectedCurrent(a), 2e-6);
  EXPECT_THROW(netlist.setCurrentSource(99, 0.0), Error);
}

}  // namespace
}  // namespace nanoleak::circuit
