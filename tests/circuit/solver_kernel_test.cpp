// SolverKernel equivalence and warm-start tests.
//
// The kernel's contract is bit-identity with DcSolver on the same netlist,
// seed and sweep order; these tests pin it over randomized gate circuits,
// source re-binds and variation re-binds, then check the warm-start
// continuation contract (perturbed seeds converge to the same operating
// point and leakage within solver tolerance).
#include "circuit/solver_kernel.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "circuit/dc_solver.h"
#include "circuit/leakage_meter.h"
#include "circuit/netlist.h"
#include "gates/gate_builder.h"
#include "util/rng.h"

namespace nanoleak::circuit {
namespace {

struct TestCircuit {
  Netlist netlist;
  NodeId vdd = 0;
  NodeId gnd = 0;
  std::vector<SourceId> sources;
  std::vector<double> seed;
  std::size_t gate_count = 0;
};

/// Random chain of INV/NAND2/NOR2/AOI21 gates with fixed-level primary
/// inputs and a few loading current sources on internal nets.
TestCircuit randomCircuit(Rng& rng, const device::Technology& tech) {
  TestCircuit tc;
  tc.vdd = tc.netlist.addNode("VDD");
  tc.gnd = tc.netlist.addNode("GND");
  tc.netlist.fixVoltage(tc.vdd, tech.vdd);
  tc.netlist.fixVoltage(tc.gnd, 0.0);

  gates::GateNetlistBuilder builder(tc.netlist, tech, tc.vdd, tc.gnd);

  std::vector<NodeId> nets;
  std::vector<bool> levels;
  const std::size_t inputs = 2 + rng.uniformInt(3);
  for (std::size_t i = 0; i < inputs; ++i) {
    const bool level = rng.uniformInt(2) == 1;
    const NodeId node = tc.netlist.addNode("in" + std::to_string(i));
    tc.netlist.fixVoltage(node, level ? tech.vdd : 0.0);
    nets.push_back(node);
    levels.push_back(level);
  }

  const std::array<gates::GateKind, 4> kinds{
      gates::GateKind::kInv, gates::GateKind::kNand2, gates::GateKind::kNor2,
      gates::GateKind::kAoi21};
  const std::size_t gate_count = 2 + rng.uniformInt(5);
  for (std::size_t g = 0; g < gate_count; ++g) {
    const gates::GateKind kind = kinds[rng.uniformInt(kinds.size())];
    const int pins = gates::inputCount(kind);
    std::vector<NodeId> ins;
    std::array<bool, 8> vals{};
    for (int p = 0; p < pins; ++p) {
      const std::size_t pick = rng.uniformInt(nets.size());
      ins.push_back(nets[pick]);
      vals[static_cast<std::size_t>(p)] = levels[pick];
    }
    const NodeId out = tc.netlist.addNode("g" + std::to_string(g));
    builder.instantiate(kind, ins, out, static_cast<int>(g),
                        std::span<const bool>(vals.data(),
                                              static_cast<std::size_t>(pins)),
                        {});
    const bool out_level = gates::evaluateGate(
        kind,
        std::span<const bool>(vals.data(), static_cast<std::size_t>(pins)));
    nets.push_back(out);
    levels.push_back(out_level);
    if (rng.uniformInt(2) == 1) {
      tc.sources.push_back(
          tc.netlist.addCurrentSource(out, rng.uniform(-2e-6, 2e-6)));
    }
  }
  tc.gate_count = gate_count;

  tc.seed.assign(tc.netlist.nodeCount(), 0.5 * tech.vdd);
  tc.seed[tc.vdd] = tech.vdd;
  tc.seed[tc.gnd] = 0.0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    tc.seed[nets[i]] = levels[i] ? tech.vdd : 0.0;
  }
  for (const auto& [node, voltage] : builder.seeds()) {
    tc.seed[node] = voltage;
  }
  return tc;
}

SolverOptions optionsFor(const device::Technology& tech) {
  SolverOptions options;
  options.temperature_k = tech.temperature_k;
  options.bracket_lo = -0.3;
  options.bracket_hi = tech.vdd + 0.3;
  return options;
}

void expectIdenticalSolutions(const Solution& want, const Solution& got) {
  ASSERT_EQ(want.voltages.size(), got.voltages.size());
  for (std::size_t i = 0; i < want.voltages.size(); ++i) {
    EXPECT_EQ(want.voltages[i], got.voltages[i]) << "node " << i;
  }
  EXPECT_EQ(want.converged, got.converged);
  EXPECT_EQ(want.sweeps, got.sweeps);
  EXPECT_EQ(want.max_residual, got.max_residual);
  EXPECT_EQ(want.max_residual_node, got.max_residual_node);
  EXPECT_EQ(want.node_solves, got.node_solves);
}

TEST(SolverKernelTest, SolvesBitIdenticalToDcSolverAcrossRandomCircuits) {
  Rng rng(42);
  const std::array<device::Technology, 3> techs{
      device::defaultTechnology(), device::gateDominatedTechnology(),
      device::btbtDominatedTechnology()};
  for (int rep = 0; rep < 12; ++rep) {
    device::Technology tech = techs[rng.uniformInt(techs.size())];
    tech.temperature_k = rng.uniformInt(2) == 1 ? 380.0 : 300.0;
    const TestCircuit tc = randomCircuit(rng, tech);
    const SolverOptions options = optionsFor(tech);

    const Solution want = DcSolver(options).solve(tc.netlist, tc.seed);
    const SolverKernel kernel(tc.netlist, options);
    const Solution got = kernel.solve(tc.seed);
    expectIdenticalSolutions(want, got);
    EXPECT_TRUE(got.converged) << "rep " << rep;

    // Residuals and leakage extraction match the interpreted path too.
    const device::Environment env{tech.temperature_k};
    const auto want_leak =
        leakageByOwner(tc.netlist, want.voltages, env, tc.gate_count);
    const auto got_leak = kernel.leakageByOwner(got.voltages, tc.gate_count);
    ASSERT_EQ(want_leak.size(), got_leak.size());
    for (std::size_t i = 0; i < want_leak.size(); ++i) {
      EXPECT_EQ(want_leak[i].subthreshold, got_leak[i].subthreshold);
      EXPECT_EQ(want_leak[i].gate, got_leak[i].gate);
      EXPECT_EQ(want_leak[i].btbt, got_leak[i].btbt);
    }
    for (NodeId node = 0; node < tc.netlist.nodeCount(); ++node) {
      if (!tc.netlist.isFixed(node)) {
        EXPECT_EQ(
            DcSolver::nodeResidual(tc.netlist, want.voltages, node, options),
            kernel.nodeResidual(got.voltages, node));
      }
    }
  }
}

TEST(SolverKernelTest, SourceRebindMatchesRebuiltNetlist) {
  Rng rng(7);
  device::Technology tech = device::defaultTechnology();
  TestCircuit tc = randomCircuit(rng, tech);
  while (tc.sources.empty()) {
    tc = randomCircuit(rng, tech);
  }
  const SolverOptions options = optionsFor(tech);
  SolverKernel kernel(tc.netlist, options);

  for (int rep = 0; rep < 4; ++rep) {
    const double amps = rng.uniform(-3e-6, 3e-6);
    for (SourceId s : tc.sources) {
      tc.netlist.setCurrentSource(s, amps);
      kernel.setSource(s, amps);
    }
    const Solution want = DcSolver(options).solve(tc.netlist, tc.seed);
    const Solution got = kernel.solve(tc.seed);
    expectIdenticalSolutions(want, got);
  }
}

TEST(SolverKernelTest, VariationRebindMatchesRebuiltNetlist) {
  Rng rng(99);
  device::Technology tech = device::defaultTechnology();
  TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);
  SolverKernel kernel(tc.netlist, options);

  for (int rep = 0; rep < 3; ++rep) {
    std::vector<device::DeviceVariation> vars;
    vars.reserve(tc.netlist.deviceCount());
    for (std::size_t i = 0; i < tc.netlist.deviceCount(); ++i) {
      vars.push_back(device::DeviceVariation{rng.uniform(-3e-9, 3e-9),
                                             rng.uniform(-1e-10, 1e-10),
                                             rng.uniform(-0.05, 0.05)});
    }
    // Legacy path: mutate the netlist devices themselves.
    for (std::size_t i = 0; i < vars.size(); ++i) {
      tc.netlist.devices()[i].mosfet.setVariation(vars[i]);
    }
    kernel.rebindVariations(vars);
    const Solution want = DcSolver(options).solve(tc.netlist, tc.seed);
    const Solution got = kernel.solve(tc.seed);
    expectIdenticalSolutions(want, got);
  }
}

TEST(SolverKernelTest, FixedVoltageRebindMatchesRebuiltNetlist) {
  Rng rng(1234);
  device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);
  SolverKernel kernel(tc.netlist, options);

  // Droop the rail: rebuild vs rebind must agree bit-for-bit.
  Netlist drooped = tc.netlist;
  drooped.fixVoltage(tc.vdd, 0.9 * tech.vdd);
  kernel.setFixedVoltage(tc.vdd, 0.9 * tech.vdd);
  const Solution want = DcSolver(options).solve(drooped, tc.seed);
  const Solution got = kernel.solve(tc.seed);
  expectIdenticalSolutions(want, got);
}

// Satellite: warm-started solves seeded from a perturbed previous solution
// converge to the same voltages (within solver tolerance) and the same
// leakage totals as cold-started legacy solves - across temperatures and
// both leakage-dominance flavours.
TEST(SolverKernelTest, WarmStartConvergesToColdSolution) {
  Rng rng(31337);
  for (const device::Technology& base :
       {device::defaultTechnology(), device::gateDominatedTechnology()}) {
    for (double t : {300.0, 380.0}) {
      device::Technology tech = base;
      tech.temperature_k = t;
      const TestCircuit tc = randomCircuit(rng, tech);
      const SolverOptions options = optionsFor(tech);

      const Solution cold = DcSolver(options).solve(tc.netlist, tc.seed);
      ASSERT_TRUE(cold.converged);

      const SolverKernel kernel(tc.netlist, options);
      std::vector<double> warm_seed = cold.voltages;
      for (double& v : warm_seed) {
        v += rng.uniform(-0.02, 0.02);
      }
      const Solution warm = kernel.solve(warm_seed);
      ASSERT_TRUE(warm.converged);

      double max_dv = 0.0;
      for (std::size_t i = 0; i < cold.voltages.size(); ++i) {
        max_dv =
            std::max(max_dv, std::abs(cold.voltages[i] - warm.voltages[i]));
      }
      // Both endpoints satisfy the residual tolerance; on driven nets that
      // pins voltages to ~1e-9 V agreement.
      EXPECT_LT(max_dv, 1e-8) << base.nmos.name << " T=" << t;

      const device::Environment env{t};
      const auto cold_leak =
          leakageByOwner(tc.netlist, cold.voltages, env, tc.gate_count);
      const auto warm_leak =
          kernel.leakageByOwner(warm.voltages, tc.gate_count);
      double cold_total = 0.0;
      double warm_total = 0.0;
      for (std::size_t i = 0; i < cold_leak.size(); ++i) {
        cold_total += cold_leak[i].total();
        warm_total += warm_leak[i].total();
      }
      EXPECT_NEAR(warm_total, cold_total, 1e-9 * std::abs(cold_total))
          << base.nmos.name << " T=" << t;
    }
  }
}

}  // namespace
}  // namespace nanoleak::circuit
