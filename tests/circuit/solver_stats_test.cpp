// solver_stats as a thin view over the obs registry: cumulative counters,
// the ScopedSolveStats window ("scoped reset"), and registry visibility
// of solves recorded through the detail hook.
#include "circuit/solver_stats.h"

#include <gtest/gtest.h>

#include <array>

#include "circuit/dc_solver.h"
#include "gates/gate_builder.h"
#include "obs/metrics.h"

namespace nanoleak::circuit {
namespace {

/// Runs one real DC solve (an inverter at input low) so the counters
/// move through the production recordSolve path, not a synthetic call.
void solveOnce() {
  const device::Technology tech = device::defaultTechnology();
  Netlist netlist;
  const NodeId vdd = netlist.addNode("VDD");
  const NodeId gnd = netlist.addNode("GND");
  const NodeId in = netlist.addNode("in");
  const NodeId out = netlist.addNode("out");
  netlist.fixVoltage(vdd, tech.vdd);
  netlist.fixVoltage(gnd, 0.0);
  netlist.fixVoltage(in, 0.0);
  gates::GateNetlistBuilder builder(netlist, tech, vdd, gnd);
  const std::array<NodeId, 1> ins{in};
  builder.instantiate(gates::GateKind::kInv, ins, out, 0);
  const Solution solution = DcSolver().solve(netlist);
  ASSERT_TRUE(solution.converged);
}

TEST(SolverStatsTest, CountersAreCumulativeAndMonotone) {
  const SolveStats before = solveStats();
  solveOnce();
  const SolveStats after = solveStats();
  EXPECT_EQ(after.solves, before.solves + 1);
  EXPECT_GT(after.node_solves, before.node_solves);
}

TEST(SolverStatsTest, ScopedWindowCountsOnlyItsOwnWork) {
  solveOnce();  // work before the window must not leak in
  const ScopedSolveStats window;
  EXPECT_EQ(window.delta().solves, 0u);
  EXPECT_EQ(window.delta().node_solves, 0u);
  solveOnce();
  const SolveStats delta = window.delta();
  EXPECT_EQ(delta.solves, 1u);
  EXPECT_GT(delta.node_solves, 0u);
  solveOnce();
  EXPECT_EQ(window.delta().solves, 2u) << "windows keep observing";
}

TEST(SolverStatsTest, NestedWindowsAreIndependent) {
  const ScopedSolveStats outer;
  solveOnce();
  const ScopedSolveStats inner;
  solveOnce();
  EXPECT_EQ(inner.delta().solves, 1u);
  EXPECT_EQ(outer.delta().solves, 2u);
}

TEST(SolverStatsTest, SolvesAreVisibleInTheObsRegistry) {
  const obs::Snapshot before = obs::snapshot();
  solveOnce();
  const obs::Snapshot delta = obs::snapshot().deltaSince(before);
  EXPECT_EQ(delta.counterValue("solver.solves"), 1u);
  EXPECT_EQ(delta.counterValue("solver.node_solves"),
            solveStats().node_solves -
                before.counterValue("solver.node_solves"));
  // The solve converged, so it lands in the converged counter and the
  // sweep histogram gains exactly one observation.
  EXPECT_EQ(delta.counterValue("solver.converged"), 1u);
  const auto it = delta.histograms.find("solver.sweeps");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count(), 1u);
}

}  // namespace
}  // namespace nanoleak::circuit
