#include "circuit/leakage_meter.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "circuit/dc_solver.h"
#include "gates/gate_builder.h"
#include "util/error.h"

namespace nanoleak::circuit {
namespace {

struct TwoInverters {
  Netlist netlist;
  NodeId vdd;
  NodeId gnd;
  NodeId in;
  NodeId mid;
  NodeId out;
  std::vector<double> voltages;
};

TwoInverters makeChain() {
  TwoInverters fx;
  const device::Technology t = device::defaultTechnology();
  fx.vdd = fx.netlist.addNode("VDD");
  fx.gnd = fx.netlist.addNode("GND");
  fx.in = fx.netlist.addNode("in");
  fx.mid = fx.netlist.addNode("mid");
  fx.out = fx.netlist.addNode("out");
  fx.netlist.fixVoltage(fx.vdd, t.vdd);
  fx.netlist.fixVoltage(fx.gnd, 0.0);
  fx.netlist.fixVoltage(fx.in, 0.0);
  gates::GateNetlistBuilder builder(fx.netlist, t, fx.vdd, fx.gnd);
  const std::array<NodeId, 1> in0{fx.in};
  builder.instantiate(gates::GateKind::kInv, in0, fx.mid, 0);
  const std::array<NodeId, 1> in1{fx.mid};
  builder.instantiate(gates::GateKind::kInv, in1, fx.out, 1);
  const Solution s = DcSolver().solve(fx.netlist);
  if (!s.converged) {
    throw Error("fixture solve failed");
  }
  fx.voltages = s.voltages;
  return fx;
}

TEST(LeakageMeterTest, TotalsArePositiveAndDecomposed) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  const device::LeakageBreakdown total =
      totalLeakage(fx.netlist, fx.voltages, env);
  EXPECT_GT(total.subthreshold, 0.0);
  EXPECT_GT(total.gate, 0.0);
  EXPECT_GT(total.btbt, 0.0);
  EXPECT_NEAR(total.total(),
              total.subthreshold + total.gate + total.btbt, 1e-18);
}

TEST(LeakageMeterTest, ByOwnerSumsToTotal) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  const auto by_owner = leakageByOwner(fx.netlist, fx.voltages, env, 2);
  ASSERT_EQ(by_owner.size(), 3u);  // owner 0, owner 1, unowned bucket
  const device::LeakageBreakdown total =
      totalLeakage(fx.netlist, fx.voltages, env);
  const double sum = by_owner[0].total() + by_owner[1].total() +
                     by_owner[2].total();
  EXPECT_NEAR(sum, total.total(), 1e-15);
  EXPECT_DOUBLE_EQ(by_owner[2].total(), 0.0);  // everything is owned
}

TEST(LeakageMeterTest, SizeMismatchThrows) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  std::vector<double> short_v(2, 0.0);
  EXPECT_THROW(totalLeakage(fx.netlist, short_v, env), Error);
  EXPECT_THROW(leakageByOwner(fx.netlist, short_v, env, 2), Error);
  EXPECT_THROW(sourceCurrent(fx.netlist, short_v, 0, env), Error);
}

TEST(LeakageMeterTest, SupplyCurrentIsPositiveAndPlausible) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  const double iddq = sourceCurrent(fx.netlist, fx.voltages, fx.vdd, env);
  EXPECT_GT(iddq, 0.0);
  // IDDQ of two inverters: same order as the metered total leakage.
  const device::LeakageBreakdown total =
      totalLeakage(fx.netlist, fx.voltages, env);
  EXPECT_GT(iddq, 0.2 * total.total());
  EXPECT_LT(iddq, 3.0 * total.total());
}

TEST(LeakageMeterTest, SupplyAndGroundCurrentsNearlyBalance) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  const double from_vdd = sourceCurrent(fx.netlist, fx.voltages, fx.vdd, env);
  const double into_gnd =
      -sourceCurrent(fx.netlist, fx.voltages, fx.gnd, env);
  // The fixed input node also sources/sinks tunneling current, so the
  // match is approximate, not exact.
  EXPECT_NEAR(from_vdd, into_gnd, 0.5 * from_vdd);
}

TEST(LeakageMeterTest, SourceCurrentRequiresFixedNode) {
  TwoInverters fx = makeChain();
  const device::Environment env{300.0};
  EXPECT_THROW(sourceCurrent(fx.netlist, fx.voltages, fx.mid, env), Error);
}

}  // namespace
}  // namespace nanoleak::circuit
