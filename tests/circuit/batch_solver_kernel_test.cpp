// BatchSolverKernel equivalence tests.
//
// The contract under test: every lane of a batched solve agrees with a
// never-batched SolverKernel solve of the same per-lane bindings. On the
// scalar backend (and whenever a lane takes the scalar fallback) the
// agreement is bit-for-bit; lockstep-converged lanes on a vectorized
// backend agree within 1e-6. Randomized circuits cover both leakage
// flavours, multiple temperatures, partial batches, per-lane source /
// rail / variation / temperature bindings, and a forced-divergence run
// that pins the fallback path to scalar bit-identity.
#include "circuit/batch_solver_kernel.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/solver_kernel.h"
#include "device/device_params.h"
#include "gates/gate_builder.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nanoleak::circuit {
namespace {

constexpr std::size_t kW = BatchSolverKernel::kLaneWidth;

struct TestCircuit {
  Netlist netlist;
  NodeId vdd = 0;
  NodeId gnd = 0;
  std::vector<SourceId> sources;
  std::vector<double> seed;
  std::size_t gate_count = 0;
};

/// Random chain of INV/NAND2/NOR2/AOI21 gates with fixed-level primary
/// inputs and loading current sources on every gate output (so each lane
/// can get distinct loading bindings).
TestCircuit randomCircuit(Rng& rng, const device::Technology& tech) {
  TestCircuit tc;
  tc.vdd = tc.netlist.addNode("VDD");
  tc.gnd = tc.netlist.addNode("GND");
  tc.netlist.fixVoltage(tc.vdd, tech.vdd);
  tc.netlist.fixVoltage(tc.gnd, 0.0);

  gates::GateNetlistBuilder builder(tc.netlist, tech, tc.vdd, tc.gnd);

  std::vector<NodeId> nets;
  std::vector<bool> levels;
  const std::size_t inputs = 2 + rng.uniformInt(3);
  for (std::size_t i = 0; i < inputs; ++i) {
    const bool level = rng.uniformInt(2) == 1;
    const NodeId node = tc.netlist.addNode("in" + std::to_string(i));
    tc.netlist.fixVoltage(node, level ? tech.vdd : 0.0);
    nets.push_back(node);
    levels.push_back(level);
  }

  const std::array<gates::GateKind, 4> kinds{
      gates::GateKind::kInv, gates::GateKind::kNand2, gates::GateKind::kNor2,
      gates::GateKind::kAoi21};
  const std::size_t gate_count = 2 + rng.uniformInt(5);
  for (std::size_t g = 0; g < gate_count; ++g) {
    const gates::GateKind kind = kinds[rng.uniformInt(kinds.size())];
    const int pins = gates::inputCount(kind);
    std::vector<NodeId> ins;
    std::array<bool, 8> vals{};
    for (int p = 0; p < pins; ++p) {
      const std::size_t pick = rng.uniformInt(nets.size());
      ins.push_back(nets[pick]);
      vals[static_cast<std::size_t>(p)] = levels[pick];
    }
    const NodeId out = tc.netlist.addNode("g" + std::to_string(g));
    builder.instantiate(kind, ins, out, static_cast<int>(g),
                        std::span<const bool>(vals.data(),
                                              static_cast<std::size_t>(pins)),
                        {});
    const bool out_level = gates::evaluateGate(
        kind,
        std::span<const bool>(vals.data(), static_cast<std::size_t>(pins)));
    nets.push_back(out);
    levels.push_back(out_level);
    tc.sources.push_back(tc.netlist.addCurrentSource(out, 0.0));
  }
  tc.gate_count = gate_count;

  tc.seed.assign(tc.netlist.nodeCount(), 0.5 * tech.vdd);
  tc.seed[tc.vdd] = tech.vdd;
  tc.seed[tc.gnd] = 0.0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    tc.seed[nets[i]] = levels[i] ? tech.vdd : 0.0;
  }
  for (const auto& [node, voltage] : builder.seeds()) {
    tc.seed[node] = voltage;
  }
  return tc;
}

SolverOptions optionsFor(const device::Technology& tech) {
  SolverOptions options;
  options.temperature_k = tech.temperature_k;
  options.bracket_lo = -0.3;
  options.bracket_hi = tech.vdd + 0.3;
  return options;
}

void expectIdenticalSolutions(const Solution& want, const Solution& got) {
  ASSERT_EQ(want.voltages.size(), got.voltages.size());
  for (std::size_t i = 0; i < want.voltages.size(); ++i) {
    EXPECT_EQ(want.voltages[i], got.voltages[i]) << "node " << i;
  }
  EXPECT_EQ(want.converged, got.converged);
  EXPECT_EQ(want.sweeps, got.sweeps);
  EXPECT_EQ(want.max_residual, got.max_residual);
  EXPECT_EQ(want.max_residual_node, got.max_residual_node);
  EXPECT_EQ(want.node_solves, got.node_solves);
}

void expectEquivalentSolutions(const Solution& want, const Solution& got,
                               double tol) {
  ASSERT_EQ(want.voltages.size(), got.voltages.size());
  EXPECT_TRUE(want.converged);
  EXPECT_TRUE(got.converged);
  for (std::size_t i = 0; i < want.voltages.size(); ++i) {
    EXPECT_NEAR(want.voltages[i], got.voltages[i], tol) << "node " << i;
  }
}

/// One lane's bindings: loading currents per source and a rail droop.
struct LaneBinding {
  std::vector<double> amps;
  double vdd = 0.0;
};

TEST(BatchSolverKernelTest, MatchesScalarAcrossFlavoursAndTemperatures) {
  Rng rng(20050711);
  for (const device::Technology& base :
       {device::defaultTechnology(), device::gateDominatedTechnology(),
        device::btbtDominatedTechnology()}) {
    for (double t : {300.0, 360.0}) {
      device::Technology tech = base;
      tech.temperature_k = t;
      const TestCircuit tc = randomCircuit(rng, tech);
      const SolverOptions options = optionsFor(tech);

      BatchSolverKernel batch(tc.netlist, options);
      SolverKernel scalar(tc.netlist, options);

      std::array<LaneBinding, kW> bindings;
      for (std::size_t lane = 0; lane < kW; ++lane) {
        bindings[lane].vdd = tech.vdd * rng.uniform(0.92, 1.0);
        batch.setFixedVoltage(lane, tc.vdd, bindings[lane].vdd);
        for (SourceId s : tc.sources) {
          const double amps = rng.uniform(-2e-6, 2e-6);
          bindings[lane].amps.push_back(amps);
          batch.setSource(lane, s, amps);
        }
      }

      std::array<BatchSolverKernel::LaneRequest, kW> requests;
      for (auto& request : requests) {
        request.initial_guess = &tc.seed;
        request.cluster_guess = &tc.seed;
      }
      const std::vector<Solution> got = batch.solve(requests);
      ASSERT_EQ(got.size(), kW);

      for (std::size_t lane = 0; lane < kW; ++lane) {
        scalar.setFixedVoltage(tc.vdd, bindings[lane].vdd);
        for (std::size_t s = 0; s < tc.sources.size(); ++s) {
          scalar.setSource(tc.sources[s], bindings[lane].amps[s]);
        }
        const Solution want = scalar.solve(tc.seed, {}, &tc.seed);
        if (kW == 1) {
          expectIdenticalSolutions(want, got[lane]);
        } else {
          expectEquivalentSolutions(want, got[lane], 1e-6);
        }

        // Same coefficients -> leakage extraction is bit-identical at any
        // common operating point.
        const auto want_leak =
            scalar.leakageByOwner(want.voltages, tc.gate_count);
        const auto got_leak =
            batch.laneLeakageByOwner(lane, want.voltages, tc.gate_count);
        ASSERT_EQ(want_leak.size(), got_leak.size());
        for (std::size_t i = 0; i < want_leak.size(); ++i) {
          EXPECT_EQ(want_leak[i].subthreshold, got_leak[i].subthreshold);
          EXPECT_EQ(want_leak[i].gate, got_leak[i].gate);
          EXPECT_EQ(want_leak[i].btbt, got_leak[i].btbt);
        }
      }
    }
  }
}

TEST(BatchSolverKernelTest, PartialBatchesMatchScalar) {
  Rng rng(77);
  const device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);

  for (std::size_t count = 1; count <= kW; ++count) {
    BatchSolverKernel batch(tc.netlist, options);
    SolverKernel scalar(tc.netlist, options);

    std::vector<std::vector<double>> amps(count);
    for (std::size_t lane = 0; lane < count; ++lane) {
      for (SourceId s : tc.sources) {
        const double a = rng.uniform(-2e-6, 2e-6);
        amps[lane].push_back(a);
        batch.setSource(lane, s, a);
      }
    }
    std::vector<BatchSolverKernel::LaneRequest> requests(count);
    for (auto& request : requests) {
      request.initial_guess = &tc.seed;
      request.cluster_guess = &tc.seed;
    }
    const std::vector<Solution> got = batch.solve(requests);
    ASSERT_EQ(got.size(), count);

    for (std::size_t lane = 0; lane < count; ++lane) {
      for (std::size_t s = 0; s < tc.sources.size(); ++s) {
        scalar.setSource(tc.sources[s], amps[lane][s]);
      }
      const Solution want = scalar.solve(tc.seed, {}, &tc.seed);
      expectEquivalentSolutions(want, got[lane], 1e-6);
    }
  }
}

// Forced divergence of the lockstep path (zero-sweep budget) drives every
// lane through the scalar fallback, which must be bit-identical to a
// never-batched SolverKernel solve of the same bindings.
TEST(BatchSolverKernelTest, ForcedFallbackIsBitIdenticalToScalar) {
  Rng rng(40902);
  for (const device::Technology& tech :
       {device::defaultTechnology(), device::gateDominatedTechnology()}) {
    const TestCircuit tc = randomCircuit(rng, tech);
    const SolverOptions options = optionsFor(tech);

    BatchSolverKernel batch(tc.netlist, options);
    batch.setMaxLockstepSweeps(0);
    SolverKernel scalar(tc.netlist, options);

    std::array<std::vector<double>, kW> amps;
    for (std::size_t lane = 0; lane < kW; ++lane) {
      for (SourceId s : tc.sources) {
        const double a = rng.uniform(-2e-6, 2e-6);
        amps[lane].push_back(a);
        batch.setSource(lane, s, a);
      }
    }
    std::array<BatchSolverKernel::LaneRequest, kW> requests;
    for (auto& request : requests) {
      request.initial_guess = &tc.seed;
      request.cluster_guess = &tc.seed;
    }
    const std::vector<Solution> got = batch.solve(requests);

    for (std::size_t lane = 0; lane < kW; ++lane) {
      for (std::size_t s = 0; s < tc.sources.size(); ++s) {
        scalar.setSource(tc.sources[s], amps[lane][s]);
      }
      const Solution want = scalar.solve(tc.seed, {}, &tc.seed);
      expectIdenticalSolutions(want, got[lane]);
    }
  }
}

TEST(BatchSolverKernelTest, PerLaneTemperaturesMatchScalar) {
  Rng rng(3001);
  const device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);

  BatchSolverKernel batch(tc.netlist, options);
  SolverKernel scalar(tc.netlist, options);

  std::array<double, kW> temps;
  for (std::size_t lane = 0; lane < kW; ++lane) {
    temps[lane] = 300.0 + 20.0 * static_cast<double>(lane);
    SolverOptions lane_options = options;
    lane_options.temperature_k = temps[lane];
    batch.setLaneOptions(lane, lane_options);
  }
  std::array<BatchSolverKernel::LaneRequest, kW> requests;
  for (auto& request : requests) {
    request.initial_guess = &tc.seed;
    request.cluster_guess = &tc.seed;
  }
  const std::vector<Solution> got = batch.solve(requests);

  for (std::size_t lane = 0; lane < kW; ++lane) {
    SolverOptions lane_options = options;
    lane_options.temperature_k = temps[lane];
    scalar.setOptions(lane_options);
    const Solution want = scalar.solve(tc.seed, {}, &tc.seed);
    if (kW == 1) {
      expectIdenticalSolutions(want, got[lane]);
    } else {
      expectEquivalentSolutions(want, got[lane], 1e-6);
    }
  }
}

TEST(BatchSolverKernelTest, PerLaneVariationsMatchScalar) {
  Rng rng(555);
  const device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);

  BatchSolverKernel batch(tc.netlist, options);
  SolverKernel scalar(tc.netlist, options);

  std::array<std::vector<device::DeviceVariation>, kW> vars;
  for (std::size_t lane = 0; lane < kW; ++lane) {
    for (std::size_t i = 0; i < tc.netlist.deviceCount(); ++i) {
      vars[lane].push_back(device::DeviceVariation{rng.uniform(-3e-9, 3e-9),
                                                   rng.uniform(-1e-10, 1e-10),
                                                   rng.uniform(-0.05, 0.05)});
    }
    batch.rebindVariations(lane, vars[lane]);
  }
  std::array<BatchSolverKernel::LaneRequest, kW> requests;
  for (auto& request : requests) {
    request.initial_guess = &tc.seed;
    request.cluster_guess = &tc.seed;
  }
  const std::vector<Solution> got = batch.solve(requests);

  for (std::size_t lane = 0; lane < kW; ++lane) {
    scalar.rebindVariations(vars[lane]);
    const Solution want = scalar.solve(tc.seed, {}, &tc.seed);
    if (kW == 1) {
      expectIdenticalSolutions(want, got[lane]);
    } else {
      expectEquivalentSolutions(want, got[lane], 1e-6);
    }
  }
}

// The equivalence tests above would pass vacuously if every lane quietly
// took the scalar fallback; this pins that the lockstep path itself
// converges well-seeded lanes (no batch_fallbacks) and that the batch
// counters account for every lane.
TEST(BatchSolverKernelTest, LockstepConvergesWellSeededLanesWithoutFallback) {
  Rng rng(606);
  const device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);

  BatchSolverKernel batch(tc.netlist, optionsFor(tech));
  for (std::size_t lane = 0; lane < kW; ++lane) {
    for (SourceId s : tc.sources) {
      batch.setSource(lane, s, rng.uniform(-2e-6, 2e-6));
    }
  }
  std::array<BatchSolverKernel::LaneRequest, kW> requests;
  for (auto& request : requests) {
    request.initial_guess = &tc.seed;
    request.cluster_guess = &tc.seed;
  }

  const std::uint64_t solves0 = obs::counterValue("solver.batch_solves");
  const std::uint64_t lanes0 = obs::counterValue("solver.batch_lane_solves");
  const std::uint64_t falls0 = obs::counterValue("solver.batch_fallbacks");
  const std::vector<Solution> got = batch.solve(requests);
  for (const Solution& s : got) {
    EXPECT_TRUE(s.converged);
  }
  EXPECT_EQ(obs::counterValue("solver.batch_solves") - solves0, 1u);
  EXPECT_EQ(obs::counterValue("solver.batch_lane_solves") - lanes0, kW);
  EXPECT_EQ(obs::counterValue("solver.batch_fallbacks") - falls0, 0u);
}

// Cold batched solves (no initial guess) must also converge and agree.
TEST(BatchSolverKernelTest, ColdSolveMatchesScalarColdSolve) {
  Rng rng(808);
  const device::Technology tech = device::defaultTechnology();
  const TestCircuit tc = randomCircuit(rng, tech);
  const SolverOptions options = optionsFor(tech);

  BatchSolverKernel batch(tc.netlist, options);
  const SolverKernel scalar(tc.netlist, options);

  std::array<BatchSolverKernel::LaneRequest, kW> requests{};
  const std::vector<Solution> got = batch.solve(requests);
  const Solution want = scalar.solve();
  for (std::size_t lane = 0; lane < kW; ++lane) {
    if (kW == 1) {
      expectIdenticalSolutions(want, got[lane]);
    } else {
      expectEquivalentSolutions(want, got[lane], 1e-6);
    }
  }
}

}  // namespace
}  // namespace nanoleak::circuit
