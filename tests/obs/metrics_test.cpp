// MetricsRegistry contract: thread-local recording merges to exact
// totals, snapshots are canonical, and misuse (kind or bounds mismatch)
// fails loudly. Metric names are unique per test - the registry is
// process-wide and other tests' counts must never leak into assertions.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.h"
#include "util/json.h"

namespace nanoleak::obs {
namespace {

TEST(MetricsTest, CounterAccumulatesAndReadsBack) {
  const Counter c = counter("test.metrics.counter_basic");
  EXPECT_EQ(counterValue("test.metrics.counter_basic"), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(counterValue("test.metrics.counter_basic"), 42u);
  EXPECT_EQ(snapshot().counterValue("test.metrics.counter_basic"), 42u);
}

TEST(MetricsTest, CounterValueOfUnknownNameIsZero) {
  EXPECT_EQ(counterValue("test.metrics.never_registered"), 0u);
  EXPECT_EQ(snapshot().counterValue("test.metrics.never_registered"), 0u);
}

TEST(MetricsTest, SameNameSharesOneCounter) {
  const Counter a = counter("test.metrics.shared");
  const Counter b = counter("test.metrics.shared");
  a.increment();
  b.increment();
  EXPECT_EQ(counterValue("test.metrics.shared"), 2u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  const Gauge g = gauge("test.metrics.gauge");
  g.set(1.5);
  g.set(-3.25);
  const Snapshot snap = snapshot();
  const auto it = snap.gauges.find("test.metrics.gauge");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, -3.25);
}

TEST(MetricsTest, HistogramBucketsByUpperBoundWithOverflow) {
  const Histogram h = histogram("test.metrics.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1   -> bucket 0
  h.observe(1.0);    // <= 1   -> bucket 0 (bounds are inclusive)
  h.observe(5.0);    // <= 10  -> bucket 1
  h.observe(100.0);  // <= 100 -> bucket 2
  h.observe(1e9);    // overflow
  const Snapshot snap = snapshot();
  const auto it = snap.histograms.find("test.metrics.hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  EXPECT_EQ(it->second.buckets,
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(it->second.count(), 5u);
}

TEST(MetricsTest, KindMismatchThrows) {
  (void)counter("test.metrics.kind_clash");
  EXPECT_THROW((void)gauge("test.metrics.kind_clash"), Error);
  EXPECT_THROW((void)histogram("test.metrics.kind_clash", {1.0}), Error);
}

TEST(MetricsTest, HistogramBoundsMismatchOrInvalidBoundsThrow) {
  (void)histogram("test.metrics.hist_bounds", {1.0, 2.0});
  EXPECT_THROW((void)histogram("test.metrics.hist_bounds", {1.0, 3.0}),
               Error);
  EXPECT_THROW((void)histogram("test.metrics.hist_empty", {}), Error);
  EXPECT_THROW((void)histogram("test.metrics.hist_unsorted", {2.0, 1.0}),
               Error);
  EXPECT_THROW((void)histogram("test.metrics.hist_dupes", {1.0, 1.0}),
               Error);
}

TEST(MetricsTest, ConcurrentIncrementsMergeExactly) {
  const Counter c = counter("test.metrics.concurrent");
  const Histogram h = histogram("test.metrics.concurrent_hist", {10.0});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(static_cast<double>(i % 20));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Joins synchronize: after them the merged totals are exact, not
  // approximate - the whole point of owner-only shard slots.
  EXPECT_EQ(counterValue("test.metrics.concurrent"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Snapshot snap = snapshot();
  const auto it = snap.histograms.find("test.metrics.concurrent_hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, DeltaSinceSubtractsAndClampsAtZero) {
  const Counter c = counter("test.metrics.delta");
  c.add(10);
  const Snapshot before = snapshot();
  c.add(7);
  const Snapshot after = snapshot();
  EXPECT_EQ(after.deltaSince(before).counterValue("test.metrics.delta"), 7u);
  // Reversed order clamps instead of wrapping to a huge unsigned value.
  EXPECT_EQ(before.deltaSince(after).counterValue("test.metrics.delta"), 0u);
}

TEST(MetricsTest, ToJsonIsCanonicalAndParses) {
  const Counter c = counter("test.metrics.json_counter");
  c.add(3);
  const Gauge g = gauge("test.metrics.json_gauge");
  g.set(2.5);
  const Snapshot snap = snapshot();
  const std::string json = snap.toJson();
  EXPECT_EQ(json, snap.toJson()) << "equal snapshots must render equal bytes";
  const util::JsonValue doc = util::parseJson(json, "metrics snapshot");
  ASSERT_EQ(doc.type, util::JsonValue::Type::kObject);
  const util::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const util::JsonValue* value = counters->find("test.metrics.json_counter");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number, 3.0);
  const util::JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const util::JsonValue* gauge_value =
      gauges->find("test.metrics.json_gauge");
  ASSERT_NE(gauge_value, nullptr);
  EXPECT_EQ(gauge_value->number, 2.5);
  // Keys come from std::map: sorted, so layout is order-independent.
  EXPECT_NE(doc.find("histograms"), nullptr);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  const Counter c = counter("test.metrics.reset");
  c.add(5);
  resetMetrics();
  EXPECT_EQ(counterValue("test.metrics.reset"), 0u);
  c.add(2);  // the handle (and registration) survives the reset
  EXPECT_EQ(counterValue("test.metrics.reset"), 2u);
}

}  // namespace
}  // namespace nanoleak::obs
