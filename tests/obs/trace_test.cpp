// Trace span contract: Chrome trace-event JSON that loads in
// chrome://tracing / Perfetto, strict per-thread nesting, level gating,
// and session semantics (enable clears, disable keeps events readable).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "util/json.h"

namespace nanoleak::obs {
namespace {

/// Validates the Chrome trace-event schema on every event of `json` and
/// returns the parsed document: root object, traceEvents array, each
/// event a complete ("ph":"X") event with name/pid/tid/ts/dur.
util::JsonValue checkChromeSchema(const std::string& json) {
  util::JsonValue doc = util::parseJson(json, "chrome trace");
  EXPECT_EQ(doc.type, util::JsonValue::Type::kObject);
  const util::JsonValue* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events != nullptr) {
    EXPECT_EQ(events->type, util::JsonValue::Type::kArray);
    for (const util::JsonValue& event : events->array) {
      EXPECT_EQ(event.type, util::JsonValue::Type::kObject);
      const util::JsonValue* ph = event.find("ph");
      const util::JsonValue* name = event.find("name");
      const util::JsonValue* pid = event.find("pid");
      const util::JsonValue* tid = event.find("tid");
      const util::JsonValue* ts = event.find("ts");
      const util::JsonValue* dur = event.find("dur");
      EXPECT_TRUE(ph && name && pid && tid && ts && dur)
          << "event missing a required Chrome trace field";
      if (!(ph && name && pid && tid && ts && dur)) {
        continue;
      }
      EXPECT_EQ(ph->string, "X");
      EXPECT_FALSE(name->string.empty());
      EXPECT_EQ(pid->number, 1.0);
      EXPECT_GE(tid->number, 1.0);
      EXPECT_GE(ts->number, 0.0);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  return doc;
}

TEST(TraceTest, ZeroSpanRunEmitsValidEmptyTrace) {
  enableTracing();
  disableTracing();
  const util::JsonValue doc = checkChromeSchema(chromeTraceJson());
  EXPECT_TRUE(doc.find("traceEvents")->array.empty());
  const util::JsonValue* unit = doc.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
}

TEST(TraceTest, SpansRecordNameDetailAndNesting) {
  enableTracing();
  {
    OBS_SPAN("test.outer", std::string("ctx"));
    { OBS_SPAN("test.inner"); }
    { OBS_SPAN("test.inner2"); }
  }
  disableTracing();
  const std::vector<TraceEvent> events = collectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  // Sorted (tid, start, longest-first): the outer span leads.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].detail, "ctx");
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_EQ(events[2].name, "test.inner2");
  for (const TraceEvent& inner : {events[1], events[2]}) {
    EXPECT_GE(inner.ts_us, events[0].ts_us);
    EXPECT_LE(inner.ts_us + inner.dur_us,
              events[0].ts_us + events[0].dur_us);
  }
  EXPECT_LE(events[1].ts_us + events[1].dur_us, events[2].ts_us)
      << "siblings must not overlap";
  checkChromeSchema(chromeTraceJson());
}

TEST(TraceTest, EveryThreadNestsStrictly) {
  enableTracing();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) {
        OBS_SPAN("test.thread_outer");
        OBS_SPAN("test.thread_inner");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  disableTracing();
  const std::vector<TraceEvent> events = collectTraceEvents();
  ASSERT_EQ(events.size(), 4u * 5u * 2u);
  std::set<std::uint32_t> tids;
  // RAII spans can only nest or follow each other within one thread:
  // walk each thread's events with an interval stack and require every
  // event to fit entirely inside its enclosing open interval.
  std::vector<TraceEvent> stack;
  std::uint32_t current_tid = 0;
  for (const TraceEvent& event : events) {
    tids.insert(event.tid);
    if (event.tid != current_tid) {
      current_tid = event.tid;
      stack.clear();
    }
    while (!stack.empty() &&
           event.ts_us >= stack.back().ts_us + stack.back().dur_us) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_GE(event.ts_us, stack.back().ts_us);
      EXPECT_LE(event.ts_us + event.dur_us,
                stack.back().ts_us + stack.back().dur_us)
          << "span overlaps its enclosing span on tid " << event.tid;
    }
    stack.push_back(event);
  }
  EXPECT_EQ(tids.size(), 4u) << "each thread gets its own tid";
}

TEST(TraceTest, DetailSpansAreGatedByLevel) {
  enableTracing(TraceLevel::kCoarse);
  {
    OBS_SPAN("test.coarse");
    OBS_SPAN("test.detail", TraceLevel::kDetail);
  }
  disableTracing();
  std::vector<TraceEvent> events = collectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.coarse");

  enableTracing(TraceLevel::kDetail);
  {
    OBS_SPAN("test.coarse");
    OBS_SPAN("test.detail", TraceLevel::kDetail);
  }
  disableTracing();
  events = collectTraceEvents();
  EXPECT_EQ(events.size(), 2u);
}

TEST(TraceTest, EnableStartsAFreshSession) {
  enableTracing();
  { OBS_SPAN("test.first_session"); }
  enableTracing();  // clears the previous session's events
  { OBS_SPAN("test.second_session"); }
  disableTracing();
  const std::vector<TraceEvent> events = collectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.second_session");
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  enableTracing();
  disableTracing();
  { OBS_SPAN("test.while_disabled"); }
  EXPECT_TRUE(collectTraceEvents().empty());
  EXPECT_EQ(traceLevel(), TraceLevel::kOff);
}

}  // namespace
}  // namespace nanoleak::obs
