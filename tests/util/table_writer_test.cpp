#include "util/table_writer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace nanoleak {
namespace {

TEST(TableWriterTest, RejectsEmptyHeader) {
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(TableWriterTest, RejectsArityMismatch) {
  TableWriter table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), Error);
}

TEST(TableWriterTest, TextIsAligned) {
  TableWriter table({"name", "value"});
  table.addRow({"x", "1"});
  table.addRow({"longer", "22"});
  const std::string text = table.toText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableWriterTest, CsvQuotesSpecialCells) {
  TableWriter table({"a", "b"});
  table.addRow({"hello, world", "quote\"inside"});
  const std::string csv = table.toCsv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableWriterTest, NumericRowsUsePrecision) {
  TableWriter table({"v"});
  table.addNumericRow({1.23456789}, 2);
  EXPECT_NE(table.toCsv().find("1.23"), std::string::npos);
  EXPECT_EQ(table.toCsv().find("1.2345"), std::string::npos);
}

TEST(TableWriterTest, RowCountTracks) {
  TableWriter table({"v"});
  EXPECT_EQ(table.rowCount(), 0u);
  table.addRow({"1"});
  table.addRow({"2"});
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(-1.0, 1), "-1.0");
}

}  // namespace
}  // namespace nanoleak
