#include "util/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "engine/thread_pool.h"
#include "util/error.h"

namespace nanoleak::util {
namespace {

TEST(CancelTest, PollWithoutTokenIsNoOp) {
  EXPECT_EQ(currentCancelToken(), nullptr);
  EXPECT_NO_THROW(pollCancel());
}

TEST(CancelTest, FreshTokenDoesNotExpire) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  CancelScope scope(&token);
  EXPECT_EQ(currentCancelToken(), &token);
  EXPECT_NO_THROW(pollCancel());
}

TEST(CancelTest, CancelExpiresAndPollThrows) {
  CancelToken token;
  CancelScope scope(&token);
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(pollCancel(), DeadlineExceeded);
  EXPECT_THROW(pollCancel(), Error);  // taxonomy: a DeadlineExceeded is an Error
}

TEST(CancelTest, DeadlineInThePastExpiresImmediately) {
  const auto start = CancelToken::Clock::now() - std::chrono::milliseconds(10);
  CancelToken token(start, 5);
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.remainingMs(), 0u);
}

TEST(CancelTest, DeadlineInTheFutureReportsRemaining) {
  CancelToken token(CancelToken::Clock::now(), 60000);
  EXPECT_FALSE(token.expired());
  const std::uint64_t remaining = token.remainingMs();
  EXPECT_GT(remaining, 0u);
  EXPECT_LE(remaining, 60000u);
}

TEST(CancelTest, ScopesNestAndRestore) {
  CancelToken outer;
  CancelToken inner;
  {
    CancelScope a(&outer);
    EXPECT_EQ(currentCancelToken(), &outer);
    {
      CancelScope b(&inner);
      EXPECT_EQ(currentCancelToken(), &inner);
      {
        CancelScope c(nullptr);  // explicit clear
        EXPECT_EQ(currentCancelToken(), nullptr);
      }
      EXPECT_EQ(currentCancelToken(), &inner);
    }
    EXPECT_EQ(currentCancelToken(), &outer);
  }
  EXPECT_EQ(currentCancelToken(), nullptr);
}

TEST(CancelTest, ThreadPoolPropagatesTokenToWorkers) {
  CancelToken token;
  CancelScope scope(&token);
  engine::ThreadPool pool(4);
  std::atomic<int> saw_token{0};
  pool.parallelFor(64, 1, [&](std::size_t, std::size_t) {
    if (currentCancelToken() == &token) {
      saw_token.fetch_add(1);
    }
    // Spread chunks across workers so more than one thread checks.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  EXPECT_EQ(saw_token.load(), 64);
}

TEST(CancelTest, CancelledTokenAbortsParallelFor) {
  CancelToken token;
  token.cancel();
  CancelScope scope(&token);
  engine::ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(1024, 1,
                                [&](std::size_t, std::size_t) {
                                  pollCancel();
                                }),
               DeadlineExceeded);
}

TEST(CancelTest, PoolWorkersSeeNoTokenByDefault) {
  engine::ThreadPool pool(2);
  std::atomic<int> null_tokens{0};
  pool.parallelFor(8, 1, [&](std::size_t, std::size_t) {
    if (currentCancelToken() == nullptr) {
      null_tokens.fetch_add(1);
    }
  });
  EXPECT_EQ(null_tokens.load(), 8);
}

}  // namespace
}  // namespace nanoleak::util
