#include "util/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace nanoleak {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(HistogramTest, BinsUniformValues) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.add(i + 0.5);
  }
  for (std::size_t bin = 0; bin < 10; ++bin) {
    EXPECT_EQ(h.count(bin), 1u);
    EXPECT_DOUBLE_EQ(h.binCenter(bin), static_cast<double>(bin) + 0.5);
  }
  EXPECT_EQ(h.totalCount(), 10u);
}

TEST(HistogramTest, ClampsOutOfRangeIntoEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.totalCount(), 2u);
}

TEST(HistogramTest, FromDataSpansSample) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const Histogram h = Histogram::fromData(values, 3);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 4.0);
  EXPECT_EQ(h.totalCount(), 4u);
}

TEST(HistogramTest, FromDataHandlesConstantSample) {
  const std::vector<double> values = {7.0, 7.0, 7.0};
  const Histogram h = Histogram::fromData(values, 5);
  EXPECT_EQ(h.totalCount(), 3u);
  EXPECT_LT(h.lo(), 7.0);
  EXPECT_GT(h.hi(), 7.0);
}

TEST(HistogramTest, FromDataRejectsEmpty) {
  EXPECT_THROW(Histogram::fromData({}, 4), Error);
}

TEST(HistogramTest, ModeFindsPeak) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(2.5);
  EXPECT_EQ(h.modeBin(), 1u);
}

TEST(HistogramTest, GaussianSampleIsBellShaped) {
  Rng rng(42);
  Histogram h(-4.0, 4.0, 16);
  for (int i = 0; i < 50000; ++i) {
    h.add(rng.gaussian());
  }
  const std::size_t center = h.modeBin();
  EXPECT_GE(center, 6u);
  EXPECT_LE(center, 9u);
  // Tails are far below the mode.
  EXPECT_LT(h.count(0) * 10, h.count(center));
  EXPECT_LT(h.count(15) * 10, h.count(center));
}

TEST(HistogramTest, ToStringEmitsOneRowPerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.toString();
  EXPECT_NE(text.find("0.5\t1"), std::string::npos);
  EXPECT_NE(text.find("1.5\t0"), std::string::npos);
}

}  // namespace
}  // namespace nanoleak
