#include "util/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"

namespace nanoleak::util::fault {
namespace {

/// Disarms every point on scope exit so one test's schedule can never
/// leak into the next (or into unrelated suites in the same binary).
struct FaultGuard {
  ~FaultGuard() { resetFaults(); }
};

TEST(FaultTest, DisarmedHitIsNoOp) {
  resetFaults();
  EXPECT_FALSE(faultsArmed());
  EXPECT_NO_THROW(FAULT_POINT("never.armed"));
}

TEST(FaultTest, FailAlwaysThrowsInjectedFault) {
  FaultGuard guard;
  configureFaults("p.fail=fail");
  EXPECT_TRUE(faultsArmed());
  try {
    FAULT_POINT("p.fail");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.point(), "p.fail");
    EXPECT_NE(std::string(e.what()).find("p.fail"), std::string::npos);
  }
  // Other points stay untouched.
  EXPECT_NO_THROW(FAULT_POINT("p.other"));
}

TEST(FaultTest, InjectedFaultIsAnError) {
  FaultGuard guard;
  configureFaults("p.fail=fail");
  EXPECT_THROW(FAULT_POINT("p.fail"), Error);
}

TEST(FaultTest, HitTriggerFiresExactlyOnce) {
  FaultGuard guard;
  configureFaults("p.third=fail@hit:3");
  EXPECT_NO_THROW(FAULT_POINT("p.third"));
  EXPECT_NO_THROW(FAULT_POINT("p.third"));
  EXPECT_THROW(FAULT_POINT("p.third"), InjectedFault);
  EXPECT_NO_THROW(FAULT_POINT("p.third"));
  EXPECT_NO_THROW(FAULT_POINT("p.third"));
}

TEST(FaultTest, EveryTriggerFiresPeriodically) {
  FaultGuard guard;
  configureFaults("p.period=fail@every:2");
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    try {
      FAULT_POINT("p.period");
    } catch (const InjectedFault&) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 4);
}

TEST(FaultTest, ProbTriggerIsSeededAndDeterministic) {
  FaultGuard guard;
  auto countFired = [] {
    int fired = 0;
    for (int i = 0; i < 64; ++i) {
      try {
        FAULT_POINT("p.prob");
      } catch (const InjectedFault&) {
        ++fired;
      }
    }
    return fired;
  };
  configureFaults("p.prob=fail@prob:0.25:42");
  const int first = countFired();
  configureFaults("p.prob=fail@prob:0.25:42");
  EXPECT_EQ(countFired(), first);
  EXPECT_GT(first, 0);
  EXPECT_LT(first, 64);
}

TEST(FaultTest, DelayActionSleeps) {
  FaultGuard guard;
  configureFaults("p.slow=delay:30");
  const auto start = std::chrono::steady_clock::now();
  FAULT_POINT("p.slow");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 30);
}

TEST(FaultTest, GateBlocksUntilOpened) {
  FaultGuard guard;
  configureFaults("p.gate=gate");
  std::atomic<bool> passed{false};
  std::thread victim([&] {
    FAULT_POINT("p.gate");
    passed.store(true);
  });
  while (gateWaiters("p.gate") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(passed.load());
  openGate("p.gate");
  victim.join();
  EXPECT_TRUE(passed.load());
  // An opened gate stays open for later hits.
  EXPECT_NO_THROW(FAULT_POINT("p.gate"));
  EXPECT_EQ(gateWaiters("p.gate"), 0u);
}

TEST(FaultTest, ResetReleasesGateWaiters) {
  configureFaults("p.gate2=gate");
  std::thread victim([] { FAULT_POINT("p.gate2"); });
  while (gateWaiters("p.gate2") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  resetFaults();
  victim.join();  // would hang forever if reset did not release the gate
  EXPECT_FALSE(faultsArmed());
}

TEST(FaultTest, CountersRecordHitsAndFires) {
  FaultGuard guard;
  configureFaults("p.counted=fail@hit:2");
  const auto before = obs::snapshot();
  EXPECT_NO_THROW(FAULT_POINT("p.counted"));
  EXPECT_THROW(FAULT_POINT("p.counted"), InjectedFault);
  EXPECT_NO_THROW(FAULT_POINT("p.counted"));
  const auto delta = obs::snapshot().deltaSince(before);
  EXPECT_EQ(delta.counterValue("fault.p.counted.hits"), 3u);
  EXPECT_EQ(delta.counterValue("fault.p.counted.fired"), 1u);
  EXPECT_EQ(delta.counterValue("fault.fired"), 1u);
}

TEST(FaultTest, ConfigureReplacesPreviousSchedule) {
  FaultGuard guard;
  configureFaults("p.a=fail");
  configureFaults("p.b=fail");
  EXPECT_NO_THROW(FAULT_POINT("p.a"));
  EXPECT_THROW(FAULT_POINT("p.b"), InjectedFault);
}

TEST(FaultTest, MultipleEntriesAndEmptySegments) {
  FaultGuard guard;
  configureFaults("p.x=fail;;p.y=delay:0;");
  EXPECT_THROW(FAULT_POINT("p.x"), InjectedFault);
  EXPECT_NO_THROW(FAULT_POINT("p.y"));
}

TEST(FaultTest, MalformedSpecsRejected) {
  FaultGuard guard;
  EXPECT_THROW(configureFaults("noequals"), Error);
  EXPECT_THROW(configureFaults("=fail"), Error);
  EXPECT_THROW(configureFaults("p=unknown"), Error);
  EXPECT_THROW(configureFaults("p=fail@bogus:1"), Error);
  EXPECT_THROW(configureFaults("p=delay:abc"), Error);
  EXPECT_THROW(configureFaults("p=fail@hit:0"), Error);
  EXPECT_THROW(configureFaults("p=fail@every:0"), Error);
  EXPECT_THROW(configureFaults("p=fail@prob:1.5:1"), Error);
  EXPECT_THROW(configureFaults("p=fail@prob:0.5"), Error);
  EXPECT_THROW(configureFaults("p=fail;p=fail"), Error);
  // A failed configure leaves the previous (empty) schedule in place.
  EXPECT_FALSE(faultsArmed());
}

}  // namespace
}  // namespace nanoleak::util::fault
