#include "util/strings.h"

#include <gtest/gtest.h>

namespace nanoleak {
namespace {

TEST(StringsTest, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto fields = splitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(StringsTest, CaseConversions) {
  EXPECT_EQ(toUpper("NaNd2"), "NAND2");
  EXPECT_EQ(toLower("NaNd2"), "nand2");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(startsWith("INPUT(G0)", "INPUT"));
  EXPECT_FALSE(startsWith("IN", "INPUT"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace nanoleak
