#include "util/error.h"

#include <gtest/gtest.h>

#include "util/linalg.h"

namespace nanoleak {
namespace {

TEST(ErrorTest, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ErrorTest, ParseErrorCarriesLine) {
  const ParseError error("bad token", 42);
  EXPECT_EQ(error.line(), 42);
  EXPECT_NE(std::string(error.what()).find("line 42"), std::string::npos);
}

TEST(ErrorTest, ParseErrorWithoutLine) {
  const ParseError error("bad token", 0);
  EXPECT_EQ(error.line(), 0);
  EXPECT_EQ(std::string(error.what()), "bad token");
}

TEST(ErrorTest, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConvergenceError("x"), Error);
  EXPECT_THROW(throw ParseError("x", 1), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(LinalgTest, SolvesIdentity) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {3, 4};
  ASSERT_TRUE(solveDense(a, b, 2));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
}

TEST(LinalgTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10};
  ASSERT_TRUE(solveDense(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LinalgTest, PivotsZeroDiagonal) {
  // First pivot is zero; needs row exchange.
  std::vector<double> a = {0, 1, 1, 0};
  std::vector<double> b = {2, 3};
  ASSERT_TRUE(solveDense(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LinalgTest, DetectsSingular) {
  std::vector<double> a = {1, 2, 2, 4};
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(solveDense(a, b, 2));
}

TEST(LinalgTest, Solves4x4) {
  // Diagonally dominant random-ish system; verify by substitution.
  std::vector<double> a = {5, 1, 0, 2,  //
                           1, 6, 2, 0,  //
                           0, 2, 7, 1,  //
                           2, 0, 1, 8};
  const std::vector<double> a_copy = a;
  std::vector<double> b = {1, 2, 3, 4};
  const std::vector<double> b_copy = b;
  ASSERT_TRUE(solveDense(a, b, 4));
  for (int i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 4; ++j) {
      sum += a_copy[static_cast<std::size_t>(i * 4 + j)] *
             b[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(sum, b_copy[static_cast<std::size_t>(i)], 1e-10);
  }
}

}  // namespace
}  // namespace nanoleak
