#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "util/error.h"
#include "util/statistics.h"

namespace nanoleak {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniformInt(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 / 5);  // within 20 %
  }
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniformInt(0), Error);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.gaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(RngTest, GaussianScalesMeanAndSigma) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.gaussian(5.0, 0.25));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequencyTracksProbability) {
  Rng rng(19);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(parent.next());
    seen.insert(child.next());
  }
  EXPECT_EQ(seen.size(), 128u);
}

}  // namespace
}  // namespace nanoleak
