// Lane abstraction tests: generic and native-width backends must agree
// with scalar libm to a few ulp, masks must blend bitwise (discarding
// inf/NaN in masked-off lanes), and ldexp/frexp must round-trip. The
// transcendental accuracy bounds here back the batch solver's <=1e-6
// scalar-equivalence gate with plenty of margin.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace nanoleak::util {
namespace {

template <std::size_t W>
void fillSequential(Lanes<W>& v, double base, double step) {
  for (std::size_t i = 0; i < W; ++i) {
    v.setLane(i, base + step * static_cast<double>(i));
  }
}

template <std::size_t W>
void checkArithmetic() {
  Lanes<W> a;
  Lanes<W> b;
  fillSequential(a, 1.25, 0.5);
  fillSequential(b, -2.0, 1.75);
  const Lanes<W> sum = a + b;
  const Lanes<W> diff = a - b;
  const Lanes<W> prod = a * b;
  const Lanes<W> quot = a / b;
  const Lanes<W> neg = -a;
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(diff[i], a[i] - b[i]);
    EXPECT_EQ(prod[i], a[i] * b[i]);
    EXPECT_EQ(quot[i], a[i] / b[i]);
    EXPECT_EQ(neg[i], -a[i]);
    EXPECT_EQ(laneMin(a, b)[i], std::min(a[i], b[i]));
    EXPECT_EQ(laneMax(a, b)[i], std::max(a[i], b[i]));
    EXPECT_EQ(laneAbs(b)[i], std::fabs(b[i]));
    EXPECT_EQ(laneFloor(b)[i], std::floor(b[i]));
  }
  const Lanes<W> pos = laneAbs(b) + Lanes<W>(0.5);
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(laneSqrt(pos)[i], std::sqrt(pos[i]));
  }
}

template <std::size_t W>
void checkLoadStoreRoundTrip() {
  std::vector<double> src(W);
  for (std::size_t i = 0; i < W; ++i) {
    src[i] = 0.1 * static_cast<double>(i) - 3.0;
  }
  const Lanes<W> v = Lanes<W>::load(src.data());
  std::vector<double> dst(W, 0.0);
  v.store(dst.data());
  EXPECT_EQ(src, dst);
}

template <std::size_t W>
void checkMasksAndSelect() {
  Lanes<W> a;
  Lanes<W> b;
  fillSequential(a, 0.0, 1.0);
  fillSequential(b, static_cast<double>(W) - 1.0, -1.0);
  const LaneMask<W> lt = laneLT(a, b);
  const LaneMask<W> ge = laneGE(a, b);
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(lt.lane(i), a[i] < b[i]);
    EXPECT_EQ(ge.lane(i), a[i] >= b[i]);
    EXPECT_EQ(maskNot(lt).lane(i), !lt.lane(i));
    EXPECT_EQ(maskAnd(lt, ge).lane(i), lt.lane(i) && ge.lane(i));
    EXPECT_EQ(maskOr(lt, ge).lane(i), lt.lane(i) || ge.lane(i));
  }
  EXPECT_TRUE(maskAll(maskOr(lt, ge)));
  EXPECT_FALSE(maskAny(maskAnd(lt, ge)));
  EXPECT_FALSE(maskAny(LaneMask<W>::none()));
  EXPECT_TRUE(maskAll(LaneMask<W>::all()));

  const Lanes<W> blended = laneSelect(lt, a, b);
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(blended[i], lt.lane(i) ? a[i] : b[i]);
  }

  // Masked-off lanes holding inf/NaN must not contaminate the blend.
  Lanes<W> poison(std::numeric_limits<double>::quiet_NaN());
  poison.setLane(0, std::numeric_limits<double>::infinity());
  const Lanes<W> safe = laneSelect(LaneMask<W>::none(), poison, a);
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(safe[i], a[i]);
  }
}

template <std::size_t W>
void checkLdexpFrexpRoundTrip(Rng& rng) {
  for (int rep = 0; rep < 200; ++rep) {
    Lanes<W> x;
    for (std::size_t i = 0; i < W; ++i) {
      const double mant = rng.uniform(0.1, 10.0);
      const int scale = static_cast<int>(rng.uniformInt(601)) - 300;
      x.setLane(i, std::ldexp(mant, scale));
    }
    Lanes<W> m;
    Lanes<W> e;
    laneFrexp(x, m, e);
    const Lanes<W> back = laneLdexp(m, e);
    for (std::size_t i = 0; i < W; ++i) {
      // Cephes normalization keeps the mantissa in [sqrt(1/2), sqrt(2)).
      EXPECT_GE(m[i], 0.70710678118654752440);
      EXPECT_LT(m[i], 1.4142135623730951);
      EXPECT_EQ(back[i], x[i]) << "lane " << i;
    }
  }
}

template <std::size_t W>
void checkTranscendentals(Rng& rng) {
  for (int rep = 0; rep < 500; ++rep) {
    Lanes<W> x;
    for (std::size_t i = 0; i < W; ++i) {
      x.setLane(i, rng.uniform(-690.0, 690.0));
    }
    const Lanes<W> e = laneExp(x);
    for (std::size_t i = 0; i < W; ++i) {
      const double want = std::exp(x[i]);
      EXPECT_NEAR(e[i], want, 1e-12 * want) << "exp(" << x[i] << ")";
    }
  }
  for (int rep = 0; rep < 500; ++rep) {
    Lanes<W> x;
    for (std::size_t i = 0; i < W; ++i) {
      x.setLane(i, std::ldexp(rng.uniform(0.5, 2.0),
                              static_cast<int>(rng.uniformInt(401)) - 200));
    }
    const Lanes<W> l = laneLog(x);
    for (std::size_t i = 0; i < W; ++i) {
      const double want = std::log(x[i]);
      const double tol = 1e-12 * std::max(1.0, std::fabs(want));
      EXPECT_NEAR(l[i], want, tol) << "log(" << x[i] << ")";
    }
  }
  for (int rep = 0; rep < 500; ++rep) {
    Lanes<W> x;
    for (std::size_t i = 0; i < W; ++i) {
      // Log-uniform over [1e-18, 1e2]: covers the tiny-x regime where
      // naive log(1+x) loses all precision.
      x.setLane(i, std::pow(10.0, rng.uniform(-18.0, 2.0)));
    }
    const Lanes<W> l = laneLog1p(x);
    for (std::size_t i = 0; i < W; ++i) {
      const double want = std::log1p(x[i]);
      EXPECT_NEAR(l[i], want, 1e-12 * std::max(want, 1e-300))
          << "log1p(" << x[i] << ")";
    }
  }
}

TEST(SimdTest, BackendNameMatchesNativeWidth) {
  const std::string name = backendName();
  if (name == "avx2") {
    EXPECT_EQ(kNativeLaneWidth, 4u);
  } else if (name == "neon") {
    EXPECT_EQ(kNativeLaneWidth, 2u);
  } else {
    EXPECT_EQ(name, "scalar");
    EXPECT_EQ(kNativeLaneWidth, 1u);
  }
}

TEST(SimdTest, ArithmeticMatchesScalar) {
  checkArithmetic<1>();
  checkArithmetic<2>();
  checkArithmetic<4>();
  checkArithmetic<kNativeLaneWidth>();
}

TEST(SimdTest, LoadStoreRoundTrips) {
  checkLoadStoreRoundTrip<1>();
  checkLoadStoreRoundTrip<2>();
  checkLoadStoreRoundTrip<4>();
}

TEST(SimdTest, MasksAndSelectBlendBitwise) {
  checkMasksAndSelect<1>();
  checkMasksAndSelect<2>();
  checkMasksAndSelect<4>();
}

TEST(SimdTest, LdexpFrexpRoundTrip) {
  Rng rng(2005);
  checkLdexpFrexpRoundTrip<1>(rng);
  checkLdexpFrexpRoundTrip<2>(rng);
  checkLdexpFrexpRoundTrip<4>(rng);
}

TEST(SimdTest, TranscendentalsMatchLibm) {
  Rng rng(1405);
  checkTranscendentals<1>(rng);
  checkTranscendentals<2>(rng);
  checkTranscendentals<4>(rng);
}

}  // namespace
}  // namespace nanoleak::util
