#include "util/statistics.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace nanoleak {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_THROW(stats.min(), Error);
  EXPECT_THROW(stats.max(), Error);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, StableAtNanoampScale) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(1e-9 + 1e-12 * (i % 10));
  }
  EXPECT_NEAR(stats.mean(), 1e-9 + 4.5e-12, 1e-18);
  EXPECT_GT(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.gaussian(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(QuantileTest, InterpolatesSortedSample) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantileSorted(sorted, 0.5), 2.5);
}

TEST(QuantileTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(quantileSorted(empty, 0.5), Error);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(quantileSorted(one, 1.5), Error);
}

TEST(SummarizeTest, MatchesKnownValues) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  const SampleSummary summary = summarize(values);
  EXPECT_EQ(summary.count, 5u);
  EXPECT_DOUBLE_EQ(summary.mean, 3.0);
  EXPECT_DOUBLE_EQ(summary.median, 3.0);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 5.0);
}

TEST(SummarizeTest, EmptySampleIsZeroed) {
  const SampleSummary summary = summarize({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
}

}  // namespace
}  // namespace nanoleak
