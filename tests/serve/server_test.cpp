#include "serve/server.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "scenario/golden_file.h"
#include "scenario/runner.h"
#include "scenario/serve_protocol.h"
#include "serve/client.h"
#include "util/error.h"
#include "util/json.h"

namespace nanoleak::serve {
namespace {

using scenario::ServeOp;
using scenario::ServeRequest;
using scenario::ServeResponse;
using scenario::ServeStatus;

/// A scenario registered in the builtin registry that runs in
/// milliseconds (small circuit, few vectors).
constexpr const char* kQuickTarget = "estimate/c17/d25s/300K";

std::string socketPathFor(const char* test) {
  // Unix socket paths are limited to ~100 bytes; TempDir() (/tmp under
  // CTest) plus a short per-test name stays well inside that.
  return testing::TempDir() + "nanoleak_" + test + ".sock";
}

ServeRequest quickRunRequest(const std::string& id) {
  ServeRequest request;
  request.id = id;
  request.op = ServeOp::kRun;
  request.target = kQuickTarget;
  return request;
}

ServeRequest quickEstimateRequest() {
  return scenario::decodeRequest(
      std::string("{\"format\":\"") + scenario::kServeFormat +
      "\",\"op\":\"estimate\",\"circuit\":\"c17\",\"vectors\":4}");
}

TEST(ServerTest, RequiresAListenerAndWorkers) {
  EXPECT_THROW(Server{ServerOptions{}}, Error);
  ServerOptions no_workers;
  no_workers.socket_path = socketPathFor("noworkers");
  no_workers.workers = 0;
  EXPECT_THROW(Server{no_workers}, Error);
}

TEST(ServerTest, PingOverUnixSocket) {
  ServerOptions options;
  options.socket_path = socketPathFor("ping");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("ping"));
  ServeRequest request;
  request.id = "p1";
  request.op = ServeOp::kPing;
  const ServeResponse response = client.call(request);
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(response.id, "p1");
  EXPECT_EQ(response.payload, "");

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, PingOverEphemeralTcpPort) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  Server server(std::move(options));
  server.start();
  ASSERT_NE(server.tcpPort(), 0);

  ServeClient client = ServeClient::connectTcp(server.tcpPort());
  ServeRequest request;
  request.op = ServeOp::kPing;
  EXPECT_EQ(client.call(request).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, RunPayloadMatchesDirectRunnerBytes) {
  ServerOptions options;
  options.socket_path = socketPathFor("runbytes");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("runbytes"));
  const ServeResponse response = client.call(quickRunRequest("r1"));
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.message;

  // The contract the CI smoke test enforces end to end: the daemon's
  // payload is byte-identical to what `nanoleak run --format json`
  // serializes for the same target.
  const scenario::SuiteResult direct =
      scenario::runSuite(scenario::builtinRegistry(), kQuickTarget, {});
  EXPECT_EQ(response.payload, scenario::serializeSuite(direct));

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, ConcurrentClientsGetByteIdenticalResponses) {
  ServerOptions options;
  options.socket_path = socketPathFor("concurrent");
  options.workers = 4;
  options.threads = 2;
  Server server(std::move(options));
  server.start();

  // One client first: the reference bytes (also the first cache fill).
  std::string reference;
  {
    ServeClient client =
        ServeClient::connectUnix(socketPathFor("concurrent"));
    const ServeResponse response = client.call(quickRunRequest("ref"));
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.message;
    reference = response.payload;
  }

  // Eight concurrent clients, mixed run + inline estimate traffic, every
  // run response must equal the single-client reference byte for byte.
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      ServeClient client =
          ServeClient::connectUnix(socketPathFor("concurrent"));
      ServeRequest estimate = quickEstimateRequest();
      estimate.id = "warm-" + std::to_string(i);
      const ServeResponse warm = client.call(estimate);
      EXPECT_EQ(warm.status, ServeStatus::kOk) << warm.message;
      const ServeResponse response =
          client.call(quickRunRequest("c" + std::to_string(i)));
      EXPECT_EQ(response.status, ServeStatus::kOk) << response.message;
      EXPECT_EQ(response.id, "c" + std::to_string(i));
      payloads[i] = response.payload;
    });
  }
  for (std::thread& thread : clients) {
    thread.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(payloads[i], reference) << "client " << i;
  }

  // Repeated circuits hit the shared plan cache: the c17 plan compiled
  // once and every later request reused it.
  EXPECT_GE(server.planCache()->stats().hits, 1u);

  // A second plan over the same technology (loading disabled changes the
  // plan key but not the device tables) resolves its library from the
  // shared table cache instead of re-characterizing.
  {
    ServeClient client =
        ServeClient::connectUnix(socketPathFor("concurrent"));
    const ServeRequest noload = scenario::decodeRequest(
        std::string("{\"format\":\"") + scenario::kServeFormat +
        "\",\"op\":\"estimate\",\"circuit\":\"c17\",\"vectors\":4,"
        "\"loading\":false}");
    EXPECT_EQ(client.call(noload).status, ServeStatus::kOk);
  }
  EXPECT_GE(server.tableCache()->stats().hits, 1u);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, InlineEstimateIsDeterministicAcrossRequests) {
  ServerOptions options;
  options.socket_path = socketPathFor("inline");
  options.workers = 2;
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("inline"));
  const ServeResponse first = client.call(quickEstimateRequest());
  const ServeResponse second = client.call(quickEstimateRequest());
  ASSERT_EQ(first.status, ServeStatus::kOk) << first.message;
  ASSERT_EQ(second.status, ServeStatus::kOk) << second.message;
  EXPECT_EQ(first.payload, second.payload);
  // The payload is a parseable golden-format suite document.
  const scenario::SuiteResult suite = scenario::parseSuite(first.payload);
  ASSERT_EQ(suite.scenarios.size(), 1u);
  EXPECT_FALSE(suite.scenarios[0].metrics.empty());

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, ZeroCapacityQueueAnswersBusy) {
  ServerOptions options;
  options.socket_path = socketPathFor("busy");
  options.queue_capacity = 0;  // deterministic: every estimation rejected
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("busy"));
  const ServeResponse response = client.call(quickRunRequest("b1"));
  EXPECT_EQ(response.status, ServeStatus::kBusy);
  EXPECT_EQ(response.payload, "");
  // Diagnostics stay answerable while estimation is saturated.
  ServeRequest ping;
  ping.op = ServeOp::kPing;
  EXPECT_EQ(client.call(ping).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, MalformedRequestGetsAnErrorResponseAndConnectionLives) {
  ServerOptions options;
  options.socket_path = socketPathFor("malformed");
  Server server(std::move(options));
  server.start();

  const std::string path = socketPathFor("malformed");
  Socket raw = Socket::connectUnix(path);
  ASSERT_TRUE(writeFrame(raw.fd(), "this is not json"));
  const auto error_frame = readFrame(raw.fd());
  ASSERT_TRUE(error_frame.has_value());
  const ServeResponse error = scenario::decodeResponse(*error_frame);
  EXPECT_EQ(error.status, ServeStatus::kError);
  EXPECT_NE(error.message, "");

  // The same connection still serves well-formed requests afterwards.
  ServeRequest ping;
  ping.op = ServeOp::kPing;
  ASSERT_TRUE(writeFrame(raw.fd(), scenario::encodeRequest(ping)));
  const auto ok_frame = readFrame(raw.fd());
  ASSERT_TRUE(ok_frame.has_value());
  EXPECT_EQ(scenario::decodeResponse(*ok_frame).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, UnknownTargetIsAnErrorNotACrash) {
  ServerOptions options;
  options.socket_path = socketPathFor("unknown");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("unknown"));
  ServeRequest request;
  request.op = ServeOp::kRun;
  request.target = "no/such/suite";
  const ServeResponse response = client.call(request);
  EXPECT_EQ(response.status, ServeStatus::kError);
  EXPECT_NE(response.message, "");
  // The daemon survives the failed request.
  EXPECT_EQ(client.call(quickRunRequest("after")).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, StatsOpReturnsParseableSnapshot) {
  ServerOptions options;
  options.socket_path = socketPathFor("stats");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("stats"));
  ServeRequest request;
  request.op = ServeOp::kStats;
  const ServeResponse response = client.call(request);
  ASSERT_EQ(response.status, ServeStatus::kOk);
  const util::JsonValue doc =
      util::parseJson(response.payload, "stats payload");
  EXPECT_EQ(doc.type, util::JsonValue::Type::kObject);

  server.requestShutdown();
  server.wait();
}

TEST(ServerTest, ClientShutdownOpDrainsTheDaemon) {
  ServerOptions options;
  options.socket_path = socketPathFor("shutdown");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("shutdown"));
  ServeRequest request;
  request.id = "bye";
  request.op = ServeOp::kShutdown;
  const ServeResponse ack = client.call(request);
  EXPECT_EQ(ack.status, ServeStatus::kOk);
  EXPECT_EQ(ack.id, "bye");
  EXPECT_TRUE(server.shutdownRequested());
  server.wait();  // returns: every thread joined, socket unlinked
}

}  // namespace
}  // namespace nanoleak::serve
