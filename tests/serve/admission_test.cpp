#include "serve/admission.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace nanoleak::serve {
namespace {

using Push = FairQueue<int>::Push;

TEST(FairQueueTest, SingleLaneIsFifo) {
  FairQueue<int> queue(8);
  EXPECT_EQ(queue.push(1, 10), Push::kAccepted);
  EXPECT_EQ(queue.push(1, 11), Push::kAccepted);
  EXPECT_EQ(queue.push(1, 12), Push::kAccepted);
  EXPECT_EQ(queue.pop(), 10);
  EXPECT_EQ(queue.pop(), 11);
  EXPECT_EQ(queue.pop(), 12);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(FairQueueTest, LanesAreDrainedRoundRobin) {
  FairQueue<int> queue(16);
  // Client 1 floods its lane before client 2 gets a single item in; the
  // consumer must still alternate rather than drain client 1 first.
  queue.push(1, 100);
  queue.push(1, 101);
  queue.push(1, 102);
  queue.push(2, 200);
  queue.push(2, 201);

  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    order.push_back(queue.pop().value());
  }
  EXPECT_EQ(order, (std::vector<int>{100, 200, 101, 201, 102}));
}

TEST(FairQueueTest, CapacityBoundsTotalAcrossLanes) {
  FairQueue<int> queue(2);
  EXPECT_EQ(queue.push(1, 1), Push::kAccepted);
  EXPECT_EQ(queue.push(2, 2), Push::kAccepted);
  EXPECT_EQ(queue.push(3, 3), Push::kFull);  // total bound, not per lane
  queue.pop();
  EXPECT_EQ(queue.push(3, 3), Push::kAccepted);
}

TEST(FairQueueTest, ZeroCapacityRejectsEverything) {
  FairQueue<int> queue(0);
  EXPECT_EQ(queue.push(1, 1), Push::kFull);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(FairQueueTest, CloseDrainsThenSignalsEndOfStream) {
  FairQueue<int> queue(8);
  queue.push(1, 1);
  queue.push(1, 2);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.push(1, 3), Push::kClosed);
  // Already-admitted items still come out, in order, before the end.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // every later consumer too
}

TEST(FairQueueTest, BlockedConsumerIsWokenByPush) {
  FairQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), 42); });
  queue.push(7, 42);
  consumer.join();
}

TEST(FairQueueTest, BlockedConsumerIsWokenByClose) {
  FairQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  queue.close();
  consumer.join();
}

}  // namespace
}  // namespace nanoleak::serve
