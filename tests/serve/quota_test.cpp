#include "serve/quota.h"

#include <gtest/gtest.h>

#include <string>

namespace nanoleak::serve {
namespace {

using Clock = TenantQuotas::Clock;

Clock::time_point at(std::uint64_t ms) {
  return Clock::time_point(std::chrono::milliseconds(ms));
}

TEST(TenantQuotasTest, DisabledQuotasAdmitEverything) {
  TenantQuotas quotas(TenantQuotas::Options{});
  EXPECT_FALSE(quotas.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(quotas.admit("anyone", at(0)).admitted);
  }
}

TEST(TenantQuotasTest, NewTenantStartsWithAFullBurst) {
  TenantQuotas quotas(TenantQuotas::Options{1.0, 3.0});
  EXPECT_TRUE(quotas.enabled());
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  EXPECT_FALSE(quotas.admit("t", at(0)).admitted);
}

TEST(TenantQuotasTest, RejectionHintIsTheExactRefillTime) {
  // rate 2/s, burst 1: drain the bucket, the next token is 500 ms away.
  TenantQuotas quotas(TenantQuotas::Options{2.0, 1.0});
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  const TenantQuotas::Decision rejected = quotas.admit("t", at(0));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.retry_after_ms, 500u);
  // Half the refill elapsed: half a token in the bucket, 250 ms to go.
  EXPECT_EQ(quotas.admit("t", at(250)).retry_after_ms, 250u);
}

TEST(TenantQuotasTest, SleepingTheHintGetsAdmitted) {
  TenantQuotas quotas(TenantQuotas::Options{2.0, 1.0});
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  const TenantQuotas::Decision rejected = quotas.admit("t", at(0));
  ASSERT_FALSE(rejected.admitted);
  EXPECT_TRUE(quotas.admit("t", at(rejected.retry_after_ms)).admitted);
}

TEST(TenantQuotasTest, RefillIsCappedAtBurst) {
  TenantQuotas quotas(TenantQuotas::Options{1000.0, 2.0});
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  // An hour idle refills to burst (2 tokens), not rate * 3600 s.
  EXPECT_TRUE(quotas.admit("t", at(3600000)).admitted);
  EXPECT_TRUE(quotas.admit("t", at(3600000)).admitted);
  EXPECT_FALSE(quotas.admit("t", at(3600000)).admitted);
}

TEST(TenantQuotasTest, TenantsHaveIndependentBuckets) {
  TenantQuotas quotas(TenantQuotas::Options{1.0, 1.0});
  EXPECT_TRUE(quotas.admit("a", at(0)).admitted);
  EXPECT_FALSE(quotas.admit("a", at(0)).admitted);
  // Tenant b is untouched by a's exhaustion.
  EXPECT_TRUE(quotas.admit("b", at(0)).admitted);
}

TEST(TenantQuotasTest, BurstIsClampedToAtLeastOne) {
  TenantQuotas quotas(TenantQuotas::Options{1.0, 0.0});
  EXPECT_TRUE(quotas.admit("t", at(0)).admitted);
  EXPECT_FALSE(quotas.admit("t", at(0)).admitted);
}

}  // namespace
}  // namespace nanoleak::serve
