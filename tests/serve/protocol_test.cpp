#include "scenario/serve_protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "util/error.h"

namespace nanoleak::scenario {
namespace {

std::string wrap(const std::string& fields) {
  return std::string("{\"format\":\"") + kServeFormat + "\"" +
         (fields.empty() ? "" : "," + fields) + "}";
}

TEST(ServeProtocolTest, OpAndStatusNamesRoundTrip) {
  for (ServeOp op :
       {ServeOp::kPing, ServeOp::kRun, ServeOp::kEstimate,
        ServeOp::kMonteCarlo, ServeOp::kThermal, ServeOp::kStats,
        ServeOp::kShutdown}) {
    EXPECT_EQ(serveOpFromString(toString(op)), op);
  }
  for (ServeStatus status :
       {ServeStatus::kOk, ServeStatus::kError, ServeStatus::kBusy,
        ServeStatus::kOverloaded, ServeStatus::kDeadlineExceeded,
        ServeStatus::kShuttingDown}) {
    EXPECT_EQ(serveStatusFromString(toString(status)), status);
  }
  EXPECT_THROW(serveOpFromString("reboot"), Error);
  EXPECT_THROW(serveStatusFromString("maybe"), Error);
}

TEST(ServeProtocolTest, RequestEncodingIsAFixedPoint) {
  // decode(encode(decode(x))) must reproduce encode(decode(x)) byte for
  // byte - the property the determinism contract leans on.
  const std::string raw = wrap(
      "\"op\":\"estimate\",\"circuit\":\"c17\",\"vectors\":8,\"seed\":3");
  const ServeRequest decoded = decodeRequest(raw);
  const std::string canonical = encodeRequest(decoded);
  EXPECT_EQ(encodeRequest(decodeRequest(canonical)), canonical);
}

TEST(ServeProtocolTest, EstimateDefaultsAndNameAreDeterministic) {
  const ServeRequest request =
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\""));
  EXPECT_EQ(request.op, ServeOp::kEstimate);
  const Scenario& sc = request.scenario;
  EXPECT_EQ(sc.method, Method::kPlanEstimate);
  EXPECT_EQ(sc.circuit, "c17");
  EXPECT_EQ(sc.flavour, "d25s");
  EXPECT_EQ(sc.temperature_k, 300.0);
  EXPECT_TRUE(sc.with_loading);
  EXPECT_EQ(sc.vectors.count, 16u);
  EXPECT_EQ(sc.vectors.seed, 1u);
  // The synthesized name is a pure function of the resolved fields.
  const ServeRequest again =
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\""));
  EXPECT_EQ(sc.name, again.scenario.name);
  EXPECT_NE(sc.name, "");
}

TEST(ServeProtocolTest, MonteCarloAndThermalDecode) {
  const ServeRequest mc = decodeRequest(
      wrap("\"op\":\"mc\",\"samples\":32,\"seed\":9,\"flavour\":\"d25s\""));
  EXPECT_EQ(mc.op, ServeOp::kMonteCarlo);
  EXPECT_EQ(mc.scenario.method, Method::kMonteCarlo);
  EXPECT_EQ(mc.scenario.mc_samples, 32u);
  EXPECT_EQ(mc.scenario.mc_seed, 9u);

  const ServeRequest thermal = decodeRequest(wrap(
      "\"op\":\"thermal\",\"circuit\":\"inv_chain8\",\"tmin\":250,"
      "\"tmax\":350,\"points\":4"));
  EXPECT_EQ(thermal.op, ServeOp::kThermal);
  EXPECT_EQ(thermal.scenario.method, Method::kThermalSweep);
  EXPECT_EQ(thermal.scenario.thermal.t_min_k, 250.0);
  EXPECT_EQ(thermal.scenario.thermal.t_max_k, 350.0);
  EXPECT_EQ(thermal.scenario.thermal.points, 4u);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  // Not JSON at all.
  EXPECT_THROW(decodeRequest("not json"), Error);
  // Missing / wrong format tag.
  EXPECT_THROW(decodeRequest("{\"op\":\"ping\"}"), Error);
  EXPECT_THROW(
      decodeRequest("{\"format\":\"nanoleak-serve-v0\",\"op\":\"ping\"}"),
      Error);
  // Missing or unknown op.
  EXPECT_THROW(decodeRequest(wrap("")), Error);
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"reboot\"")), Error);
  // Unknown fields are rejected, not ignored: a typo like "vektors"
  // would otherwise silently run a different workload.
  EXPECT_THROW(decodeRequest(wrap(
                   "\"op\":\"estimate\",\"circuit\":\"c17\",\"vektors\":8")),
               Error);
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"ping\",\"target\":\"x\"")),
               Error);
  // Range violations.
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"run\"")), Error);  // no target
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"estimate\"")), Error);
  EXPECT_THROW(
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\","
                         "\"temperature_k\":0")),
      Error);
  EXPECT_THROW(decodeRequest(wrap(
                   "\"op\":\"estimate\",\"circuit\":\"c17\",\"vectors\":0")),
               Error);
  EXPECT_THROW(
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\","
                         "\"seed\":-1")),
      Error);
  EXPECT_THROW(
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\","
                         "\"vectors\":2.5")),
      Error);
  EXPECT_THROW(
      decodeRequest(wrap("\"op\":\"estimate\",\"circuit\":\"c17\","
                         "\"policy\":\"sequential\"")),
      Error);
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"mc\",\"samples\":0")), Error);
  EXPECT_THROW(decodeRequest(wrap(
                   "\"op\":\"thermal\",\"circuit\":\"c17\",\"points\":1")),
               Error);
  EXPECT_THROW(
      decodeRequest(wrap("\"op\":\"thermal\",\"circuit\":\"c17\","
                         "\"tmin\":300,\"tmax\":300")),
      Error);
}

TEST(ServeProtocolTest, ResponseRoundTripsArbitraryPayloadBytes) {
  ServeResponse response;
  response.id = "req-7";
  response.status = ServeStatus::kOk;
  response.payload = "{\"line\":1}\n\"quotes\" and \\backslashes\\\n\ttabs";
  response.message = "";
  const ServeResponse decoded = decodeResponse(encodeResponse(response));
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.payload, response.payload);
  EXPECT_EQ(decoded.message, response.message);

  ServeResponse error;
  error.status = ServeStatus::kBusy;
  error.message = "admission queue full";
  const ServeResponse decoded_error = decodeResponse(encodeResponse(error));
  EXPECT_EQ(decoded_error.status, ServeStatus::kBusy);
  EXPECT_EQ(decoded_error.message, "admission queue full");
}

TEST(ServeProtocolTest, DeadlineAndTenantRoundTripOnEstimationOps) {
  const ServeRequest decoded = decodeRequest(
      wrap("\"op\":\"estimate\",\"circuit\":\"c17\",\"deadline_ms\":250,"
           "\"tenant\":\"team-a\""));
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded.tenant, "team-a");
  const std::string canonical = encodeRequest(decoded);
  const ServeRequest again = decodeRequest(canonical);
  EXPECT_EQ(again.deadline_ms, 250u);
  EXPECT_EQ(again.tenant, "team-a");
  EXPECT_EQ(encodeRequest(again), canonical);
}

TEST(ServeProtocolTest, UnsetDeadlineAndTenantLeaveRequestBytesUnchanged) {
  // The resilience fields are emitted only when set, so requests from
  // older clients keep their exact historical bytes (and cache keys).
  ServeRequest request;
  request.op = ServeOp::kRun;
  request.target = "golden/small";
  const std::string encoded = encodeRequest(request);
  EXPECT_EQ(encoded.find("deadline_ms"), std::string::npos);
  EXPECT_EQ(encoded.find("tenant"), std::string::npos);
  const ServeRequest decoded = decodeRequest(encoded);
  EXPECT_EQ(decoded.deadline_ms, 0u);
  EXPECT_EQ(decoded.tenant, "");
}

TEST(ServeProtocolTest, DeadlineAndTenantAreRejectedOnDiagnosticOps) {
  // ping/stats/shutdown run inline on the reader thread - a deadline or
  // tenant there would silently do nothing, so the codec rejects them.
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"ping\",\"deadline_ms\":10")),
               Error);
  EXPECT_THROW(decodeRequest(wrap("\"op\":\"stats\",\"tenant\":\"t\"")),
               Error);
}

TEST(ServeProtocolTest, RetryAfterRoundTripsAndIsElidedWhenZero) {
  ServeResponse busy;
  busy.status = ServeStatus::kBusy;
  busy.message = "admission queue full";
  busy.retry_after_ms = 300;
  const ServeResponse decoded = decodeResponse(encodeResponse(busy));
  EXPECT_EQ(decoded.status, ServeStatus::kBusy);
  EXPECT_EQ(decoded.retry_after_ms, 300u);

  ServeResponse ok;
  ok.status = ServeStatus::kOk;
  ok.payload = "{}";
  const std::string encoded = encodeResponse(ok);
  EXPECT_EQ(encoded.find("retry_after_ms"), std::string::npos);
  EXPECT_EQ(decodeResponse(encoded).retry_after_ms, 0u);
}

TEST(ServeProtocolTest, RequestIdIsEchoedThroughEncoding) {
  ServeRequest request;
  request.id = "client-42/req-3";
  request.op = ServeOp::kPing;
  const ServeRequest decoded = decodeRequest(encodeRequest(request));
  EXPECT_EQ(decoded.id, "client-42/req-3");
}

}  // namespace
}  // namespace nanoleak::scenario
