// End-to-end resilience behaviour of the serve daemon: saturation and
// recovery, per-request deadlines, tenant quotas, idle disconnects,
// slow-client eviction, and client retry under injected faults. Every
// test drives a real daemon over a Unix socket; fault injection keeps
// the timing deterministic where wall-clock races would otherwise
// decide the outcome.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "scenario/golden_file.h"
#include "scenario/runner.h"
#include "scenario/serve_protocol.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_io.h"
#include "util/error.h"
#include "util/fault.h"

namespace nanoleak::serve {
namespace {

using scenario::ServeOp;
using scenario::ServeRequest;
using scenario::ServeResponse;
using scenario::ServeStatus;

constexpr const char* kQuickTarget = "estimate/c17/d25s/300K";

std::string socketPathFor(const char* test) {
  return testing::TempDir() + "nanoleak_res_" + test + ".sock";
}

ServeRequest quickRunRequest(const std::string& id) {
  ServeRequest request;
  request.id = id;
  request.op = ServeOp::kRun;
  request.target = kQuickTarget;
  return request;
}

/// Disarms every fault on scope exit so one test's schedule can never
/// leak into the next.
struct FaultGuard {
  ~FaultGuard() { util::fault::resetFaults(); }
};

/// Spins until `predicate` holds or `timeout_ms` elapsed.
template <typename Predicate>
bool eventually(Predicate predicate, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// The canonical bytes `nanoleak run --format json` prints for the
/// quick target - what every successful serve response must equal.
const std::string& referencePayload() {
  static const std::string bytes = scenario::serializeSuite(
      scenario::runSuite(scenario::builtinRegistry(), kQuickTarget, {}));
  return bytes;
}

TEST(ServeResilienceTest, SaturationRejectsBusyThenRecoversByteIdentical) {
  FaultGuard guard;
  ServerOptions options;
  options.socket_path = socketPathFor("saturation");
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(std::move(options));
  server.start();

  // Gate the lone executor: the first admitted request parks at the
  // dispatch fault point, the second fills the one-slot queue, and the
  // third must bounce - a deterministic saturation, no timing luck.
  util::fault::configureFaults("serve.executor.dispatch=gate");
  Socket raw = Socket::connectUnix(socketPathFor("saturation"));
  ASSERT_TRUE(writeFrame(raw.fd(),
                         scenario::encodeRequest(quickRunRequest("r1"))));
  ASSERT_TRUE(eventually([] {
    return util::fault::gateWaiters("serve.executor.dispatch") == 1;
  }));
  ASSERT_TRUE(writeFrame(raw.fd(),
                         scenario::encodeRequest(quickRunRequest("r2"))));
  ASSERT_TRUE(writeFrame(raw.fd(),
                         scenario::encodeRequest(quickRunRequest("r3"))));

  // The reader answers the rejection inline, so the first response
  // frame on the wire is r3's `busy` - with a non-zero retry hint.
  const auto busy_frame = readFrame(raw.fd());
  ASSERT_TRUE(busy_frame.has_value());
  const ServeResponse busy = scenario::decodeResponse(*busy_frame);
  EXPECT_EQ(busy.id, "r3");
  EXPECT_EQ(busy.status, ServeStatus::kBusy);
  EXPECT_GT(busy.retry_after_ms, 0u);

  // Recovery: open the gate, both queued requests drain with payloads
  // byte-identical to the one-shot CLI.
  util::fault::openGate("serve.executor.dispatch");
  for (const char* id : {"r1", "r2"}) {
    const auto frame = readFrame(raw.fd());
    ASSERT_TRUE(frame.has_value());
    const ServeResponse response = scenario::decodeResponse(*frame);
    EXPECT_EQ(response.id, id);
    ASSERT_EQ(response.status, ServeStatus::kOk) << response.message;
    EXPECT_EQ(response.payload, referencePayload());
  }

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, DeadlineExceededIsStructuredAndCachesStayUsable) {
  FaultGuard guard;
  ServerOptions options;
  options.socket_path = socketPathFor("deadline");
  Server server(std::move(options));
  server.start();

  // A 50 ms dispatch delay guarantees the 1 ms budget is spent before
  // the engine's first cancellation poll, whatever the host's speed.
  util::fault::configureFaults("serve.executor.dispatch=delay:50");
  ServeClient client = ServeClient::connectUnix(socketPathFor("deadline"));
  ServeRequest bounded = quickRunRequest("d1");
  bounded.deadline_ms = 1;
  const auto sent = std::chrono::steady_clock::now();
  const ServeResponse response = client.call(bounded);
  const auto waited = std::chrono::steady_clock::now() - sent;
  EXPECT_EQ(response.status, ServeStatus::kDeadlineExceeded);
  EXPECT_NE(response.message.find("deadline"), std::string::npos)
      << response.message;
  EXPECT_EQ(response.payload, "");
  // The whole point of a deadline: the answer arrives promptly, not
  // after the full computation (generous bound for loaded CI hosts).
  EXPECT_LT(waited, std::chrono::seconds(2));

  // The abandoned request left the shared caches consistent: the same
  // work without a deadline succeeds with the canonical bytes.
  util::fault::resetFaults();
  const ServeResponse retry = client.call(quickRunRequest("d2"));
  ASSERT_EQ(retry.status, ServeStatus::kOk) << retry.message;
  EXPECT_EQ(retry.payload, referencePayload());

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, TenantQuotaRejectsOverloadedPerTenant) {
  ServerOptions options;
  options.socket_path = socketPathFor("quota");
  options.quota_rps = 0.001;  // refill far slower than the test runs
  options.quota_burst = 1.0;
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("quota"));
  ServeRequest first = quickRunRequest("q1");
  first.tenant = "team-a";
  ASSERT_EQ(client.call(first).status, ServeStatus::kOk);

  ServeRequest second = quickRunRequest("q2");
  second.tenant = "team-a";
  const ServeResponse rejected = client.call(second);
  EXPECT_EQ(rejected.status, ServeStatus::kOverloaded);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  EXPECT_NE(rejected.message.find("team-a"), std::string::npos);

  // Quotas are per tenant: team-b's bucket is untouched by team-a's
  // exhaustion, and its response bytes are unaffected by the rejection.
  ServeRequest other = quickRunRequest("q3");
  other.tenant = "team-b";
  const ServeResponse ok = client.call(other);
  ASSERT_EQ(ok.status, ServeStatus::kOk) << ok.message;
  EXPECT_EQ(ok.payload, referencePayload());

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, AnonymousQuotaIsPerConnection) {
  ServerOptions options;
  options.socket_path = socketPathFor("anonquota");
  options.quota_rps = 0.001;
  options.quota_burst = 1.0;
  Server server(std::move(options));
  server.start();

  // No tenant field: the bucket is the connection's own, so a second
  // connection is not starved by the first one's spend.
  ServeClient first = ServeClient::connectUnix(socketPathFor("anonquota"));
  ASSERT_EQ(first.call(quickRunRequest("a1")).status, ServeStatus::kOk);
  EXPECT_EQ(first.call(quickRunRequest("a2")).status,
            ServeStatus::kOverloaded);
  ServeClient second = ServeClient::connectUnix(socketPathFor("anonquota"));
  EXPECT_EQ(second.call(quickRunRequest("b1")).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, IdleConnectionIsDisconnected) {
  ServerOptions options;
  options.socket_path = socketPathFor("idle");
  options.idle_timeout_ms = 200;
  Server server(std::move(options));
  server.start();

  const obs::Snapshot before = obs::snapshot();
  Socket raw = Socket::connectUnix(socketPathFor("idle"));
  // Never send a frame: the daemon owes this connection nothing and
  // hangs up after the idle bound - observed here as a clean EOF.
  const auto frame = readFrame(raw.fd());
  EXPECT_FALSE(frame.has_value());
  EXPECT_EQ(obs::snapshot().deltaSince(before).counterValue(
                "serve.idle_disconnects"),
            1u);

  // An active client on the same daemon is unaffected.
  ServeClient client = ServeClient::connectUnix(socketPathFor("idle"));
  EXPECT_EQ(client.call(quickRunRequest("alive")).status, ServeStatus::kOk);

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, SlowClientIsEvictedNotWaitedOn) {
  ServerOptions options;
  options.socket_path = socketPathFor("slow");
  options.workers = 1;
  options.write_timeout_ms = 100;
  options.send_buffer_bytes = 4096;  // tiny: a few responses fill it
  Server server(std::move(options));
  server.start();

  const obs::Snapshot before = obs::snapshot();
  // Pipeline many requests and never read a byte: the kernel buffer
  // fills, a response write stalls past the bound, and the daemon
  // evicts the connection instead of pinning its one executor.
  Socket raw = Socket::connectUnix(socketPathFor("slow"));
  for (int i = 0; i < 40; ++i) {
    try {
      if (!writeFrame(raw.fd(), scenario::encodeRequest(quickRunRequest(
                                    "s" + std::to_string(i))))) {
        break;  // already evicted mid-pipeline: exactly what we want
      }
    } catch (const Error&) {
      break;  // same: the eviction surfaced as a send error
    }
  }
  ASSERT_TRUE(eventually([&] {
    return obs::snapshot().deltaSince(before).counterValue(
               "serve.write_evictions") >= 1u;
  })) << "daemon never evicted the non-reading client";

  // The executor is free again: a well-behaved client gets served.
  ServeClient client = ServeClient::connectUnix(socketPathFor("slow"));
  const ServeResponse response = client.call(quickRunRequest("ok"));
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.message;
  EXPECT_EQ(response.payload, referencePayload());

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, ClientRetriesThroughInjectedWriteFault) {
  FaultGuard guard;
  ServerOptions options;
  options.socket_path = socketPathFor("retry");
  Server server(std::move(options));
  server.start();

  // Warm the daemon (and the fault-free reference) first.
  {
    ServeClient warm = ServeClient::connectUnix(socketPathFor("retry"));
    ASSERT_EQ(warm.call(quickRunRequest("warm")).status, ServeStatus::kOk);
  }

  // The daemon is idle, so the next writeFrame in this process is the
  // client's request send: fail exactly that one. The client reconnects,
  // resends identical bytes, and the final payload is byte-identical to
  // an undisturbed call.
  util::fault::configureFaults("serve.socket.write=fail@hit:1");
  ServeClient::Options client_options;
  client_options.retries = 2;
  client_options.backoff_base_ms = 1;
  client_options.backoff_cap_ms = 4;
  ServeClient client =
      ServeClient::connectUnix(socketPathFor("retry"), client_options);
  const obs::Snapshot before = obs::snapshot();
  const ServeResponse response = client.call(quickRunRequest("r1"));
  ASSERT_EQ(response.status, ServeStatus::kOk) << response.message;
  EXPECT_EQ(response.payload, referencePayload());
  const obs::Snapshot delta = obs::snapshot().deltaSince(before);
  EXPECT_EQ(delta.counterValue("serve_client.retries"), 1u);
  EXPECT_EQ(delta.counterValue("fault.serve.socket.write.fired"), 1u);

  server.requestShutdown();
  server.wait();
}

TEST(ServeResilienceTest, ZeroRetryClientSurfacesTheFault) {
  FaultGuard guard;
  ServerOptions options;
  options.socket_path = socketPathFor("noretry");
  Server server(std::move(options));
  server.start();

  ServeClient client = ServeClient::connectUnix(socketPathFor("noretry"));
  util::fault::configureFaults("serve.socket.write=fail@hit:1");
  EXPECT_THROW(client.call(quickRunRequest("n1")), Error);

  server.requestShutdown();
  server.wait();
}

}  // namespace
}  // namespace nanoleak::serve
