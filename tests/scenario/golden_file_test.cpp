#include "scenario/golden_file.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "util/error.h"

namespace nanoleak::scenario {
namespace {

SuiteResult sampleSuite() {
  SuiteResult suite;
  suite.suite = "demo";
  ScenarioResult a;
  a.name = "est/c17";
  a.metrics = {{"gates", 6.0}, {"total_mean_A", 1.9986311847309895e-05}};
  ScenarioResult b;
  b.name = "golden/\"quoted\"\n";
  b.metrics = {{"vectors", 2.0}};
  suite.scenarios = {a, b};
  return suite;
}

TEST(GoldenFileTest, SerializeParseRoundTripsExactly) {
  const SuiteResult original = sampleSuite();
  const std::string json = serializeSuite(original);
  const SuiteResult parsed = parseSuite(json);
  EXPECT_EQ(parsed.suite, original.suite);
  ASSERT_EQ(parsed.scenarios.size(), original.scenarios.size());
  for (std::size_t i = 0; i < parsed.scenarios.size(); ++i) {
    EXPECT_EQ(parsed.scenarios[i].name, original.scenarios[i].name);
    ASSERT_EQ(parsed.scenarios[i].metrics.size(),
              original.scenarios[i].metrics.size());
    for (std::size_t m = 0; m < parsed.scenarios[i].metrics.size(); ++m) {
      EXPECT_EQ(parsed.scenarios[i].metrics[m].name,
                original.scenarios[i].metrics[m].name);
      // %.17g is exact for doubles: parse must return the same bits.
      EXPECT_EQ(parsed.scenarios[i].metrics[m].value,
                original.scenarios[i].metrics[m].value);
    }
  }
  // Canonical: serializing the parsed result reproduces the bytes.
  EXPECT_EQ(serializeSuite(parsed), json);
}

TEST(GoldenFileTest, CanonicalFloatFormattingRoundTripsExtremes) {
  for (double value :
       {0.0, -0.0, 1.0, 1.0 / 3.0, 6.0221e23, 1.6e-19,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -9.7055134147890623e-06}) {
    const std::string text = formatCanonical(value);
    // strtod, not std::stod: stod throws out_of_range on subnormals.
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

TEST(GoldenFileTest, EmptySuiteAndEmptyMetricsSerialize) {
  SuiteResult empty;
  empty.suite = "empty";
  const SuiteResult parsed = parseSuite(serializeSuite(empty));
  EXPECT_EQ(parsed.suite, "empty");
  EXPECT_TRUE(parsed.scenarios.empty());

  ScenarioResult bare;
  bare.name = "bare";
  empty.scenarios = {bare};
  const SuiteResult parsed2 = parseSuite(serializeSuite(empty));
  ASSERT_EQ(parsed2.scenarios.size(), 1u);
  EXPECT_TRUE(parsed2.scenarios[0].metrics.empty());
}

TEST(GoldenFileTest, RejectsNonFiniteMetrics) {
  SuiteResult suite;
  suite.suite = "bad";
  ScenarioResult sc;
  sc.name = "x";
  sc.metrics = {{"nan", std::numeric_limits<double>::quiet_NaN()}};
  suite.scenarios = {sc};
  EXPECT_THROW(serializeSuite(suite), Error);
  sc.metrics = {{"inf", std::numeric_limits<double>::infinity()}};
  suite.scenarios = {sc};
  EXPECT_THROW(serializeSuite(suite), Error);
}

TEST(GoldenFileTest, MalformedJsonThrowsParseErrorWithLine) {
  EXPECT_THROW(parseSuite(""), ParseError);
  EXPECT_THROW(parseSuite("{"), ParseError);
  EXPECT_THROW(parseSuite("{\"format\": }"), ParseError);
  EXPECT_THROW(parseSuite("[] trailing"), ParseError);
  // Overflowing literals must not round-trip to Inf (they would make
  // tolerance checks vacuous), and \u escapes must be 4 hex digits.
  EXPECT_THROW(parseSuite("{\"format\": \"nanoleak-golden-v1\", "
                          "\"suite\": \"s\", \"scenarios\": "
                          "[{\"name\": \"x\", \"metrics\": "
                          "[{\"name\": \"m\", \"value\": 1e999}]}]}"),
               ParseError);
  EXPECT_THROW(parseSuite("{\"format\": \"nanoleak-golden-v1\", "
                          "\"suite\": \"\\u00zz\", \"scenarios\": []}"),
               ParseError);
  try {
    parseSuite("{\n  \"format\": \"nanoleak-golden-v1\",\n  \"suite\": @\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(GoldenFileTest, SchemaViolationsThrow) {
  // Wrong format tag.
  EXPECT_THROW(
      parseSuite("{\"format\": \"v0\", \"suite\": \"x\", \"scenarios\": []}"),
      Error);
  // Missing fields.
  EXPECT_THROW(parseSuite("{\"format\": \"nanoleak-golden-v1\"}"), Error);
  // Wrong types.
  EXPECT_THROW(parseSuite("{\"format\": \"nanoleak-golden-v1\", "
                          "\"suite\": 3, \"scenarios\": []}"),
               Error);
}

TEST(GoldenFileTest, FileRoundTripAndMissingFileThrows) {
  const std::string path = testing::TempDir() + "golden_file_test.json";
  const SuiteResult original = sampleSuite();
  saveSuiteFile(path, original);
  const SuiteResult loaded = loadSuiteFile(path);
  EXPECT_EQ(serializeSuite(loaded), serializeSuite(original));
  EXPECT_THROW(loadSuiteFile("/nonexistent/dir/golden.json"), Error);
  EXPECT_THROW(saveSuiteFile("/nonexistent/dir/golden.json", original),
               Error);
}

}  // namespace
}  // namespace nanoleak::scenario
