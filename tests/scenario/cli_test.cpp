// CLI error paths and end-to-end record/check flows, driven in-process
// through scenario::cliMain (same code the nanoleak binary runs).
#include "scenario/cli.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "scenario/golden_file.h"
#include "scenario/metrics_io.h"
#include "util/json.h"

namespace nanoleak::scenario {
namespace {

struct CliResult {
  int exit_code;
  std::string out;
  std::string err;
};

CliResult runCli(std::vector<const char*> args) {
  args.insert(args.begin(), "nanoleak");
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      cliMain(static_cast<int>(args.size()), args.data(), out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, UsageErrorsExitWithCode2AndPrintUsage) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {},                                      // missing command
           {"frobnicate"},                          // unknown command
           {"run"},                                 // missing name
           {"run", "ci", "extra"},                  // too many positionals
           {"run", "ci", "--format", "yaml"},       // bad format
           {"run", "ci", "--threads", "many"},      // bad integer
           {"run", "ci", "--threads", "-2"},        // negative
           {"run", "ci", "--threads"},              // missing value
           {"run", "ci", "--wat"},                  // unknown option
           {"record", "ci"},                        // missing --out
           {"check", "ci"},                         // missing --golden
           {"check", "ci", "--golden", "g", "--rel-tol", "x"},
           {"list", "--format", "json"},            // list is table/csv only
           {"run", "ci", "--out", "f"},             // --out is record-only
           {"record", "ci", "--out", "f", "--rel-tol", "0.1"},
           {"record", "ci", "--out", "f", "--format", "csv"},
           {"check", "ci", "--golden", "g", "--format", "json"},
           {"list", "ci"},                          // list takes no names
       }) {
    const CliResult result = runCli(args);
    EXPECT_EQ(result.exit_code, kExitUsage);
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
    EXPECT_NE(result.err.find("error:"), std::string::npos);
  }
}

TEST(CliTest, HelpExitsZeroWithUsage) {
  const CliResult result = runCli({"help"});
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownSuiteIsARuntimeFailureNotAUsageError) {
  const CliResult result = runCli({"run", "no_such_suite"});
  EXPECT_EQ(result.exit_code, kExitFailure);
  EXPECT_NE(result.err.find("no_such_suite"), std::string::npos);
}

TEST(CliTest, CheckAgainstMissingGoldenFileFails) {
  const CliResult result =
      runCli({"check", "smoke", "--golden", "/nonexistent/g.json"});
  EXPECT_EQ(result.exit_code, kExitFailure);
}

TEST(CliTest, ListShowsScenariosAndSuites) {
  const CliResult result = runCli({"list"});
  EXPECT_EQ(result.exit_code, kExitOk);
  EXPECT_NE(result.out.find("estimate/c17/d25s/300K"), std::string::npos);
  EXPECT_NE(result.out.find("ci"), std::string::npos);
  const CliResult csv = runCli({"list", "--format", "csv"});
  EXPECT_EQ(csv.exit_code, kExitOk);
  EXPECT_NE(csv.out.find("scenario,method"), std::string::npos);
}

TEST(CliTest, RecordThenCheckRoundTripsExactly) {
  const std::string path = testing::TempDir() + "cli_smoke_golden.json";
  const CliResult record =
      runCli({"record", "smoke", "--out", path.c_str(), "--threads", "2"});
  ASSERT_EQ(record.exit_code, kExitOk) << record.err;
  EXPECT_NE(record.out.find("recorded"), std::string::npos);

  const CliResult check = runCli(
      {"check", "smoke", "--golden", path.c_str(), "--exact", "--threads",
       "1"});
  EXPECT_EQ(check.exit_code, kExitOk) << check.out << check.err;
  EXPECT_NE(check.out.find("PASS"), std::string::npos);
}

TEST(CliTest, CheckFailsOnTamperedGoldenWithReadableReport) {
  const std::string path = testing::TempDir() + "cli_tampered_golden.json";
  ASSERT_EQ(runCli({"record", "smoke", "--out", path.c_str()}).exit_code,
            kExitOk);
  // Nudge one metric by 1% - far outside the default tolerance.
  SuiteResult golden = loadSuiteFile(path);
  ASSERT_FALSE(golden.scenarios.empty());
  ASSERT_FALSE(golden.scenarios[0].metrics.empty());
  Metric& victim = golden.scenarios[0].metrics.back();
  victim.value *= 1.01;
  saveSuiteFile(path, golden);

  const CliResult check = runCli({"check", "smoke", "--golden", path.c_str()});
  EXPECT_EQ(check.exit_code, kExitFailure);
  EXPECT_NE(check.out.find("FAIL"), std::string::npos);
  EXPECT_NE(check.out.find(victim.name), std::string::npos);

  // ...and a loose per-run tolerance lets the same file pass.
  const CliResult loose = runCli(
      {"check", "smoke", "--golden", path.c_str(), "--rel-tol", "0.05"});
  EXPECT_EQ(loose.exit_code, kExitOk) << loose.out;
}

TEST(CliTest, RunEmitsCanonicalJsonWhenAsked) {
  const CliResult result =
      runCli({"run", "golden/c17/d25s/300K", "--format", "json"});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;
  const SuiteResult parsed = parseSuite(result.out);
  ASSERT_EQ(parsed.scenarios.size(), 1u);
  EXPECT_EQ(parsed.scenarios[0].name, "golden/c17/d25s/300K");
  EXPECT_NE(parsed.scenarios[0].find("loading_delta_pct"), nullptr);
}

TEST(CliTest, RunTimePrintsPerScenarioTimingTable) {
  const CliResult result =
      runCli({"run", "golden/c17/d25s/300K", "--time"});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;
  EXPECT_NE(result.out.find("wall [ms]"), std::string::npos);
  EXPECT_NE(result.out.find("node solves"), std::string::npos);
  EXPECT_NE(result.out.find("TOTAL"), std::string::npos);
  // A golden solve performs real solver work, so the counter is non-zero.
  EXPECT_EQ(result.out.find("TOTAL      0.0  0"), std::string::npos);
}

TEST(CliTest, RunTimeRejectsJsonFormat) {
  const CliResult result = runCli(
      {"run", "golden/c17/d25s/300K", "--time", "--format", "json"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("--time"), std::string::npos);
}

TEST(CliTest, TimeFlagRejectedOutsideRun) {
  const CliResult result = runCli({"list", "--time"});
  EXPECT_EQ(result.exit_code, kExitUsage);
  EXPECT_NE(result.err.find("--time"), std::string::npos);
}

TEST(CliTest, ObsFlagsRejectedOnCommandsWithoutArtifacts) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"record", "ci", "--out", "f", "--metrics-out", "m.json"},
           {"check", "ci", "--golden", "g", "--trace-out", "t.json"},
           {"list", "--metrics-out", "m.json"},
           {"stats"},                              // missing suite name
           {"stats", "ci", "--format", "json"},    // table/csv only
       }) {
    const CliResult result = runCli(args);
    EXPECT_EQ(result.exit_code, kExitUsage);
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
  }
}

TEST(CliTest, RejectsNonFiniteNumericFlagValues) {
  // strtod happily parses "inf", "infinity" and "nan"; the flag parser
  // must not let them through as temperatures or tolerances (an infinite
  // --tmax would make every thermal grid "valid").
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"thermal", "c17", "--tmax", "inf"},
           {"thermal", "c17", "--tmax", "infinity"},
           {"thermal", "c17", "--tmin", "nan"},
           {"thermal", "c17", "--tmax", "1e999"},       // overflows to inf
           {"thermal", "c17", "--tmin", "-1"},
           {"check", "ci", "--golden", "g", "--rel-tol", "inf"},
           {"check", "ci", "--golden", "g", "--abs-tol", "nan"},
           {"client", "estimate", "c17", "--socket", "s", "--temp", "inf"},
       }) {
    const CliResult result = runCli(args);
    EXPECT_EQ(result.exit_code, kExitUsage) << args[0];
    EXPECT_NE(result.err.find("finite"), std::string::npos) << args[0];
  }
}

TEST(CliTest, ServeAndClientUsageErrors) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"serve"},                                  // no listener at all
           {"serve", "extra"},                         // takes no positionals
           {"serve", "--socket", "s", "--workers", "0"},
           {"serve", "--port", "70000"},               // out of range
           {"serve", "--socket", "s", "--format", "json"},  // wrong flag
           {"client"},                                 // missing op
           {"client", "reboot", "--socket", "s"},      // unknown op
           {"client", "ping"},                         // no endpoint
           {"client", "ping", "--socket", "s", "--port", "1"},  // both
           {"client", "run", "--socket", "s"},         // missing target
           {"client", "estimate", "--socket", "s"},    // missing circuit
           {"client", "mc", "extra", "--socket", "s"},
           {"client", "ping", "--socket", "s", "--out", "f"},  // wrong flag
           {"client", "estimate", "c17", "--socket", "s", "--policy",
            "sequential"},
           // Resilience flags: validated like every other flag.
           {"serve", "--socket", "s", "--faults", "point=explode"},
           {"serve", "--socket", "s", "--quota-rps", "nan"},
           {"serve", "--socket", "s", "--timeout-ms", "5"},  // client-only
           {"client", "run", "t", "--socket", "s", "--deadline-ms", "0"},
           {"client", "run", "t", "--socket", "s", "--quota-rps", "1"},
           // deadline/tenant on diagnostic ops would silently no-op.
           {"client", "ping", "--socket", "s", "--deadline-ms", "10"},
           {"client", "stats", "--socket", "s", "--tenant", "t"},
       }) {
    const CliResult result = runCli(args);
    EXPECT_EQ(result.exit_code, kExitUsage)
        << args[0] << " " << (args.size() > 1 ? args[1] : "");
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
  }
}

TEST(CliTest, ClientAgainstMissingDaemonFailsCleanly) {
  const CliResult result = runCli(
      {"client", "ping", "--socket", "/nonexistent/nanoleak.sock"});
  EXPECT_EQ(result.exit_code, kExitFailure);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(CliTest, StatsPrintsScenarioAndCounterTables) {
  const CliResult result = runCli({"stats", "smoke"});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;
  EXPECT_NE(result.out.find("wall [ms]"), std::string::npos);
  EXPECT_NE(result.out.find("TOTAL"), std::string::npos);
  EXPECT_NE(result.out.find("counter"), std::string::npos);
  EXPECT_NE(result.out.find("solver.solves"), std::string::npos);
  EXPECT_NE(result.out.find("solver.node_solves"), std::string::npos);
}

TEST(CliTest, RunWritesParseableMetricsAndTraceArtifacts) {
  const std::string metrics_path = testing::TempDir() + "cli_metrics.json";
  const std::string trace_path = testing::TempDir() + "cli_trace.json";
  const CliResult result =
      runCli({"run", "smoke", "--metrics-out", metrics_path.c_str(),
              "--trace-out", trace_path.c_str()});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good()) << metrics_path;
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  const util::JsonValue metrics =
      util::parseJson(metrics_text.str(), "metrics artifact");
  const util::JsonValue* format = metrics.find("format");
  ASSERT_NE(format, nullptr);
  EXPECT_EQ(format->string, kMetricsFormat);
  const util::JsonValue* suite = metrics.find("suite");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->string, "smoke");
  const util::JsonValue* scenarios = metrics.find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  EXPECT_EQ(scenarios->array.size(), 2u);
  ASSERT_NE(metrics.find("process"), nullptr);

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << trace_path;
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  const util::JsonValue trace =
      util::parseJson(trace_text.str(), "trace artifact");
  const util::JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty()) << "coarse spans must be recorded";
  bool saw_suite_span = false;
  for (const util::JsonValue& event : events->array) {
    const util::JsonValue* name = event.find("name");
    ASSERT_NE(name, nullptr);
    saw_suite_span = saw_suite_span || name->string == "suite.run";
  }
  EXPECT_TRUE(saw_suite_span);
}

}  // namespace
}  // namespace nanoleak::scenario
