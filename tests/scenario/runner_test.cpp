#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "scenario/golden_file.h"
#include "scenario/registry.h"
#include "util/error.h"

namespace nanoleak::scenario {
namespace {

TEST(RunnerTest, SharedCachesNeverChangeTheBytes) {
  // The serve daemon's core guarantee, checked at the runner level: a
  // suite run through shared plan/table caches serializes byte-identically
  // to the historical per-run-local path, warm or cold.
  const Registry registry = builtinRegistry();
  const std::string golden =
      serializeSuite(runSuite(registry, "estimate/c17/d25s/300K", {}));

  RunOptions shared;
  shared.table_cache = std::make_shared<engine::TableCache>();
  shared.plan_cache = std::make_shared<engine::PlanCache>();
  const std::string cold = serializeSuite(
      runSuite(registry, "estimate/c17/d25s/300K", shared));
  EXPECT_EQ(cold, golden);
  EXPECT_EQ(shared.plan_cache->stats().misses, 1u);

  const std::string warm = serializeSuite(
      runSuite(registry, "estimate/c17/d25s/300K", shared));
  EXPECT_EQ(warm, golden);
  // The second run answered from the cached compilation.
  EXPECT_EQ(shared.plan_cache->stats().misses, 1u);
  EXPECT_GE(shared.plan_cache->stats().hits, 1u);
}

TEST(RunnerTest, UnknownSuiteOrScenarioThrows) {
  const Registry registry = builtinRegistry();
  EXPECT_THROW(runSuite(registry, "nope"), Error);
}

TEST(RunnerTest, EstimateMetricsAreShapedAndOrdered) {
  const Registry registry = builtinRegistry();
  const SuiteResult suite =
      runSuite(registry, "estimate/c17/d25s/300K", {.threads = 2});
  ASSERT_EQ(suite.scenarios.size(), 1u);
  const ScenarioResult& result = suite.scenarios[0];
  const std::vector<std::string> expected = {
      "gates",      "vectors",     "total_mean_A", "sub_mean_A",
      "gate_mean_A", "btbt_mean_A", "total_min_A",  "total_max_A"};
  ASSERT_EQ(result.metrics.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.metrics[i].name, expected[i]);
  }
  EXPECT_DOUBLE_EQ(result.find("gates")->value, 6.0);
  EXPECT_DOUBLE_EQ(result.find("vectors")->value, 16.0);
  const double mean = result.find("total_mean_A")->value;
  EXPECT_GT(mean, 0.0);
  EXPECT_LE(result.find("total_min_A")->value, mean);
  EXPECT_GE(result.find("total_max_A")->value, mean);
  // Components sum to the total.
  EXPECT_NEAR(result.find("sub_mean_A")->value +
                  result.find("gate_mean_A")->value +
                  result.find("btbt_mean_A")->value,
              mean, 1e-18);
}

TEST(RunnerTest, GoldenScenarioReportsLoadingDelta) {
  const Registry registry = builtinRegistry();
  const SuiteResult suite = runSuite(registry, "golden/c17/d25s/300K");
  const ScenarioResult& result = suite.scenarios[0];
  // The paper's circuit-level observation: the loading-aware full solve
  // sits a few percent above the traditional no-loading accumulation.
  const double delta = result.find("loading_delta_pct")->value;
  EXPECT_GT(delta, 0.5);
  EXPECT_LT(delta, 15.0);
  EXPECT_GT(result.find("node_count")->value, 0.0);
}

TEST(RunnerTest, EstimateTracksGoldenOnTheCiCircuits) {
  const Registry registry = builtinRegistry();
  engine::BatchRunner runner(engine::BatchOptions{.threads = 2});
  // Same circuit, same fixed vector, estimator vs full transistor solve.
  Scenario estimate = registry.get("estimate/fanout_star6/d25s/300K");
  Scenario golden = estimate;
  golden.name = "golden-twin";
  golden.method = Method::kGolden;
  const double est =
      runScenario(estimate, runner).find("total_mean_A")->value;
  const double ref = runScenario(golden, runner).find("total_mean_A")->value;
  EXPECT_LT(std::abs(est - ref) / ref, 0.10) << "est " << est << " vs golden "
                                             << ref;
}

TEST(RunnerTest, NoLoadScenarioDiffersFromLoadingAware) {
  const Registry registry = builtinRegistry();
  const SuiteResult with =
      runSuite(registry, "estimate/rca4/d25s/300K", {.threads = 1});
  const SuiteResult without =
      runSuite(registry, "estimate/rca4/d25s/300K/noload", {.threads = 1});
  const double with_total = with.scenarios[0].find("total_mean_A")->value;
  const double without_total =
      without.scenarios[0].find("total_mean_A")->value;
  EXPECT_NE(with_total, without_total);
  // Loading raises the subthreshold-dominated total by a few percent.
  EXPECT_GT(with_total, without_total);
  EXPECT_LT(100.0 * (with_total - without_total) / without_total, 20.0);
}

TEST(RunnerTest, MonteCarloScenarioSummarizesThePopulation) {
  const Registry registry = builtinRegistry();
  const SuiteResult suite = runSuite(registry, "mc/inv_fixture/d25s/300K",
                                     {.threads = 4});
  const ScenarioResult& result = suite.scenarios[0];
  EXPECT_DOUBLE_EQ(result.find("samples")->value, 64.0);
  EXPECT_GT(result.find("mean_with_A")->value, 0.0);
  EXPECT_GT(result.find("std_with_A")->value, 0.0);
  // Fig. 11: loading widens the spread more than it moves the mean.
  EXPECT_GT(std::abs(result.find("std_shift_pct")->value), 0.0);
}

TEST(RunnerTest, TemperatureCornerMovesTheLeakage) {
  const Registry registry = builtinRegistry();
  const SuiteResult cold =
      runSuite(registry, "estimate/c17/d25s/300K", {.threads = 1});
  const SuiteResult hot =
      runSuite(registry, "estimate/c17/d25s/360K", {.threads = 1});
  // Subthreshold leakage grows strongly with temperature.
  EXPECT_GT(hot.scenarios[0].find("sub_mean_A")->value,
            1.5 * cold.scenarios[0].find("sub_mean_A")->value);
}

}  // namespace
}  // namespace nanoleak::scenario
