// The golden determinism contract: recording the committed "ci" suite is
// byte-reproducible - run-to-run and across thread counts. This is what
// makes `nanoleak record` + `nanoleak check --exact` a meaningful
// regression gate (and what the driver's 1/4/8-thread acceptance check
// exercises end to end).
#include <gtest/gtest.h>

#include "obs/trace.h"
#include "scenario/golden_file.h"
#include "scenario/registry.h"
#include "scenario/runner.h"

namespace nanoleak::scenario {
namespace {

TEST(ScenarioDeterminismTest, CiSuiteIsByteIdenticalAcrossThreadCounts) {
  const Registry registry = builtinRegistry();
  const std::string one_thread =
      serializeSuite(runSuite(registry, "ci", {.threads = 1}));
  const std::string four_threads =
      serializeSuite(runSuite(registry, "ci", {.threads = 4}));
  // EQ on the serialized bytes, not the doubles: this is exactly the
  // `nanoleak record` output, so a diff here is a golden-file diff.
  EXPECT_EQ(one_thread, four_threads);
}

TEST(ScenarioDeterminismTest, RecordingTwiceIsByteIdentical) {
  const Registry registry = builtinRegistry();
  const std::string first =
      serializeSuite(runSuite(registry, "smoke", {.threads = 2}));
  const std::string second =
      serializeSuite(runSuite(registry, "smoke", {.threads = 2}));
  EXPECT_EQ(first, second);
}

TEST(ScenarioDeterminismTest, SingleScenarioRunMatchesItsSuiteEntry) {
  const Registry registry = builtinRegistry();
  const SuiteResult suite = runSuite(registry, "smoke", {.threads = 1});
  for (const ScenarioResult& in_suite : suite.scenarios) {
    const SuiteResult alone =
        runSuite(registry, in_suite.name, {.threads = 1});
    ASSERT_EQ(alone.scenarios.size(), 1u);
    ASSERT_EQ(alone.scenarios[0].metrics.size(), in_suite.metrics.size());
    for (std::size_t m = 0; m < in_suite.metrics.size(); ++m) {
      EXPECT_EQ(alone.scenarios[0].metrics[m].name,
                in_suite.metrics[m].name);
      EXPECT_EQ(alone.scenarios[0].metrics[m].value,
                in_suite.metrics[m].value)
          << in_suite.name << "." << in_suite.metrics[m].name;
    }
  }
}

TEST(ScenarioDeterminismTest, WalkAndEstimateAgreeOnSharedPatterns) {
  // The delta-walk path must be bit-identical to the full-estimation path
  // on the same patterns (the plan's core equivalence, surfaced at the
  // scenario level): run the walk scenario and its estimate twin over the
  // same fixed single pattern and compare totals.
  const Registry registry = builtinRegistry();
  Scenario walk = registry.get("walk/rca4/d25s/300K");
  Scenario estimate = walk;
  estimate.name = "estimate-twin";
  estimate.method = Method::kPlanEstimate;
  engine::BatchRunner runner(engine::BatchOptions{.threads = 2});
  const ScenarioResult walk_result = runScenario(walk, runner);
  const ScenarioResult est_result = runScenario(estimate, runner);
  ASSERT_EQ(walk_result.metrics.size(), est_result.metrics.size());
  for (std::size_t m = 0; m < walk_result.metrics.size(); ++m) {
    EXPECT_EQ(walk_result.metrics[m].value, est_result.metrics[m].value)
        << walk_result.metrics[m].name;
  }
}

/// Runs a suite with metrics snapshots active (they always are - the
/// registry is process-wide) and tracing at the most intrusive level, and
/// returns the serialized golden bytes. Restores tracing to off.
std::string serializeInstrumented(const std::string& suite, int threads) {
  obs::enableTracing(obs::TraceLevel::kDetail);
  const std::string bytes =
      serializeSuite(runSuite(builtinRegistry(), suite, {.threads = threads}));
  obs::disableTracing();
  return bytes;
}

TEST(ScenarioDeterminismTest, CiSuiteUnperturbedByMetricsAndTracing) {
  // The observability layer must be read-only: golden bytes with
  // kDetail tracing enabled match the uninstrumented run, at one thread
  // and under contention.
  const std::string plain =
      serializeSuite(runSuite(builtinRegistry(), "ci", {.threads = 1}));
  EXPECT_EQ(serializeInstrumented("ci", 1), plain);
  EXPECT_EQ(serializeInstrumented("ci", 8), plain);
}

TEST(ScenarioDeterminismTest, ThermalSuiteUnperturbedByMetricsAndTracing) {
  const std::string plain =
      serializeSuite(runSuite(builtinRegistry(), "thermal", {.threads = 1}));
  EXPECT_EQ(serializeInstrumented("thermal", 1), plain);
  EXPECT_EQ(serializeInstrumented("thermal", 8), plain);
}

}  // namespace
}  // namespace nanoleak::scenario
