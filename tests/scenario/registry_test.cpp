#include "scenario/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.h"

namespace nanoleak::scenario {
namespace {

TEST(RegistryTest, AddGetAndNames) {
  Registry registry;
  Scenario sc;
  sc.name = "a";
  sc.circuit = "c17";
  registry.add(sc);
  sc.name = "b";
  registry.add(sc);
  EXPECT_TRUE(registry.has("a"));
  EXPECT_FALSE(registry.has("c"));
  EXPECT_EQ(registry.get("a").circuit, "c17");
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, RejectsDuplicatesEmptyNamesAndUnknownLookups) {
  Registry registry;
  Scenario sc;
  sc.name = "a";
  registry.add(sc);
  EXPECT_THROW(registry.add(sc), Error);
  Scenario unnamed;
  unnamed.name = "";
  EXPECT_THROW(registry.add(unnamed), Error);
  EXPECT_THROW(registry.get("missing"), Error);
  EXPECT_THROW(registry.suite("missing"), Error);
}

TEST(RegistryTest, SuitesReferenceExistingScenariosOnly) {
  Registry registry;
  Scenario sc;
  sc.name = "a";
  registry.add(sc);
  registry.addSuite("s", {"a"});
  EXPECT_TRUE(registry.hasSuite("s"));
  EXPECT_EQ(registry.suite("s"), (std::vector<std::string>{"a"}));
  EXPECT_THROW(registry.addSuite("s", {"a"}), Error);       // duplicate
  EXPECT_THROW(registry.addSuite("t", {"missing"}), Error);  // dangling ref
}

TEST(RegistryTest, BuiltinRegistryHasTheStandardSuites) {
  const Registry registry = builtinRegistry();
  for (const char* suite :
       {"ci", "smoke", "fig12", "corners", "thermal", "optimize"}) {
    EXPECT_TRUE(registry.hasSuite(suite)) << suite;
    for (const std::string& name : registry.suite(suite)) {
      EXPECT_TRUE(registry.has(name)) << name;
    }
  }
  // The ci suite covers every method.
  bool seen[4] = {false, false, false, false};
  for (const std::string& name : registry.suite("ci")) {
    seen[static_cast<int>(registry.get(name).method)] = true;
  }
  EXPECT_TRUE(seen[static_cast<int>(Method::kPlanEstimate)]);
  EXPECT_TRUE(seen[static_cast<int>(Method::kDeltaWalk)]);
  EXPECT_TRUE(seen[static_cast<int>(Method::kGolden)]);
  EXPECT_TRUE(seen[static_cast<int>(Method::kMonteCarlo)]);
  // fig12 walks the paper's roster in one place.
  EXPECT_EQ(registry.suite("fig12").size(), fig12CircuitNames().size());
}

TEST(ScenarioTest, BuildCircuitKnowsEveryBuiltinName) {
  for (const std::string& name : builtinCircuitNames()) {
    EXPECT_GT(buildCircuit(name).gateCount(), 0u) << name;
  }
  EXPECT_THROW(buildCircuit("not_a_circuit"), Error);
}

TEST(ScenarioTest, MethodNamesRoundTrip) {
  for (Method method : {Method::kPlanEstimate, Method::kDeltaWalk,
                        Method::kGolden, Method::kMonteCarlo,
                        Method::kThermalSweep, Method::kOptimize}) {
    EXPECT_EQ(methodFromString(toString(method)), method);
  }
  EXPECT_THROW(methodFromString("bogus"), Error);
}

TEST(ScenarioTest, FlavoursResolveAndUnknownThrows) {
  for (const std::string& flavour : knownFlavours()) {
    EXPECT_GT(technologyForFlavour(flavour).vdd, 0.0) << flavour;
  }
  EXPECT_THROW(technologyForFlavour("d99x"), Error);
  Scenario sc;
  sc.flavour = "d25s";
  sc.temperature_k = 412.0;
  EXPECT_DOUBLE_EQ(technologyFor(sc).temperature_k, 412.0);
}

TEST(ScenarioTest, ExpandVectorsPoliciesAreDeterministic) {
  const auto fixed = expandVectors(VectorPolicy::fixedPattern(), 5);
  ASSERT_EQ(fixed.size(), 1u);
  EXPECT_EQ(fixed[0], std::vector<bool>(5, false));

  const auto random_a = expandVectors(VectorPolicy::random(8, 77), 9);
  const auto random_b = expandVectors(VectorPolicy::random(8, 77), 9);
  EXPECT_EQ(random_a, random_b);
  EXPECT_NE(random_a, expandVectors(VectorPolicy::random(8, 78), 9));

  const auto walk = expandVectors(VectorPolicy::walk(4, 3), 6);
  ASSERT_EQ(walk.size(), 4u);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    std::size_t flipped = 0;
    for (std::size_t b = 0; b < 6; ++b) {
      flipped += walk[i][b] != walk[i - 1][b] ? 1 : 0;
    }
    EXPECT_EQ(flipped, 1u) << "walk step " << i;
  }

  VectorPolicy mismatched = VectorPolicy::fixedPattern({true, false});
  EXPECT_THROW(expandVectors(mismatched, 5), Error);
  VectorPolicy empty;
  empty.count = 0;
  EXPECT_THROW(expandVectors(empty, 5), Error);
}

}  // namespace
}  // namespace nanoleak::scenario
