// Atomic-write behaviour of the observability artifact writers: a
// crashed or failed save must never leave a truncated artifact at the
// destination (dashboards tailing the file would parse garbage), and no
// temp-file residue may accumulate next to it.
#include "scenario/metrics_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.h"
#include "util/error.h"
#include "util/json.h"

namespace nanoleak::scenario {
namespace {

SuiteResult tinyResult() {
  SuiteResult result;
  result.suite = "metrics_io_test";
  ScenarioResult sc;
  sc.name = "s1";
  sc.metrics.push_back({"total_leakage_a", 1.25e-7});
  result.scenarios.push_back(sc);
  return result;
}

std::string readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The writer's temp name is deterministic (path + ".tmp." + pid), so
/// probing for residue is exact.
std::string tempNameFor(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

TEST(MetricsIoTest, SaveLeavesNoTempResidue) {
  const std::string path = testing::TempDir() + "metrics_io_atomic.json";
  saveMetricsFile(path, tinyResult());
  const util::JsonValue doc = util::parseJson(readAll(path), "artifact");
  const util::JsonValue* suite = doc.find("suite");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->string, "metrics_io_test");
  EXPECT_FALSE(std::ifstream(tempNameFor(path)).good());
}

TEST(MetricsIoTest, OverwriteReplacesTheWholeFile) {
  const std::string path = testing::TempDir() + "metrics_io_overwrite.json";
  // First write a *larger* artifact, then a smaller one: a non-truncating
  // in-place writer would leave trailing bytes of the old file behind.
  SuiteResult big = tinyResult();
  for (int i = 0; i < 64; ++i) {
    ScenarioResult sc;
    sc.name = "padding/scenario/" + std::to_string(i);
    sc.metrics.push_back({"m", static_cast<double>(i)});
    big.scenarios.push_back(sc);
  }
  saveMetricsFile(path, big);
  const std::string big_bytes = readAll(path);

  saveMetricsFile(path, tinyResult());
  const std::string small_bytes = readAll(path);
  ASSERT_LT(small_bytes.size(), big_bytes.size());
  // Still one complete, parseable document - no stale tail.
  const util::JsonValue doc =
      util::parseJson(small_bytes, "overwritten artifact");
  ASSERT_NE(doc.find("scenarios"), nullptr);
  EXPECT_EQ(doc.find("scenarios")->array.size(), 1u);
}

TEST(MetricsIoTest, FailedSaveLeavesNeitherTargetNorTempBehind) {
  // An unwritable destination directory fails the save without creating
  // anything: the old artifact (here: nothing) stays untouched.
  const std::string path = "/nonexistent_dir_for_metrics_io/m.json";
  EXPECT_THROW(saveMetricsFile(path, tinyResult()), Error);
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(tempNameFor(path)).good());
}

TEST(MetricsIoTest, FailedSaveKeepsThePreviousArtifactIntact) {
  const std::string path = testing::TempDir() + "metrics_io_keep.json";
  saveMetricsFile(path, tinyResult());
  const std::string before = readAll(path);
  ASSERT_FALSE(before.empty());

  // Rename onto a path whose parent vanished mid-flight is the realistic
  // failure; simulate the simplest variant - the temp file cannot even
  // be created because the target directory is gone - by pointing the
  // save at a bad path and confirming the good artifact is untouched.
  EXPECT_THROW(
      saveMetricsFile("/nonexistent_dir_for_metrics_io/m.json", tinyResult()),
      Error);
  EXPECT_EQ(readAll(path), before);
}

TEST(MetricsIoTest, TraceFileIsAtomicToo) {
  const std::string path = testing::TempDir() + "metrics_io_trace.json";
  saveTraceFile(path);
  const util::JsonValue doc = util::parseJson(readAll(path), "trace");
  EXPECT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_FALSE(std::ifstream(tempNameFor(path)).good());
}

}  // namespace
}  // namespace nanoleak::scenario
