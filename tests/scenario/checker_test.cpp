#include "scenario/checker.h"

#include <gtest/gtest.h>

#include <limits>

namespace nanoleak::scenario {
namespace {

SuiteResult makeSuite(double total, double sub) {
  SuiteResult suite;
  suite.suite = "s";
  ScenarioResult sc;
  sc.name = "est/c17";
  sc.metrics = {{"total_mean_A", total}, {"sub_mean_A", sub}};
  suite.scenarios = {sc};
  return suite;
}

TEST(CheckerTest, IdenticalSuitesPassExactly) {
  const SuiteResult suite = makeSuite(2e-5, 1e-5);
  const CheckReport report =
      checkSuite(suite, suite, {Tolerance{0.0, 0.0}, {}});
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.scenarios_checked, 1u);
  EXPECT_EQ(report.metrics_checked, 2u);
  EXPECT_NE(report.format().find("PASS"), std::string::npos);
}

TEST(CheckerTest, RelativeToleranceGatesValueDrift) {
  const SuiteResult golden = makeSuite(2e-5, 1e-5);
  const SuiteResult live = makeSuite(2e-5 * (1.0 + 5e-7), 1e-5);
  // Within the default 1e-6 relative tolerance.
  EXPECT_TRUE(checkSuite(golden, live).passed());
  // Out of a tightened tolerance.
  const CheckReport tight =
      checkSuite(golden, live, {Tolerance{0.0, 1e-9}, {}});
  ASSERT_EQ(tight.issues.size(), 1u);
  EXPECT_EQ(tight.issues[0].scenario, "est/c17");
  EXPECT_EQ(tight.issues[0].metric, "total_mean_A");
  // The report names golden and live values and the allowed band.
  const std::string text = tight.format();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("total_mean_A"), std::string::npos);
  EXPECT_NE(text.find("allowed"), std::string::npos);
}

TEST(CheckerTest, AbsoluteToleranceCoversNearZeroMetrics) {
  const SuiteResult golden = makeSuite(0.0, 1e-5);
  const SuiteResult live = makeSuite(1e-12, 1e-5);
  // rel * |0| = 0, so only abs saves this.
  EXPECT_FALSE(checkSuite(golden, live, {Tolerance{0.0, 1e-3}, {}}).passed());
  EXPECT_TRUE(checkSuite(golden, live, {Tolerance{1e-9, 0.0}, {}}).passed());
}

TEST(CheckerTest, PerMetricOverridesWin) {
  const SuiteResult golden = makeSuite(2e-5, 1e-5);
  const SuiteResult live = makeSuite(2e-5 * 1.01, 1e-5);
  CheckOptions options;
  options.tolerance = {0.0, 1e-9};
  options.metric_overrides["total_mean_A"] = {0.0, 0.05};
  EXPECT_TRUE(checkSuite(golden, live, options).passed());
}

TEST(CheckerTest, MissingAndExtraScenariosAndMetricsAreFlagged) {
  SuiteResult golden = makeSuite(2e-5, 1e-5);
  SuiteResult live = golden;

  live.scenarios[0].metrics.pop_back();          // sub_mean_A missing
  live.scenarios[0].metrics.push_back({"new_metric", 1.0});
  ScenarioResult extra;
  extra.name = "est/extra";
  live.scenarios.push_back(extra);
  ScenarioResult gone;
  gone.name = "est/gone";
  golden.scenarios.push_back(gone);

  const CheckReport report = checkSuite(golden, live);
  EXPECT_FALSE(report.passed());
  std::size_t missing_metric = 0;
  std::size_t extra_metric = 0;
  std::size_t missing_scenario = 0;
  std::size_t extra_scenario = 0;
  for (const CheckIssue& issue : report.issues) {
    if (issue.metric == "sub_mean_A") ++missing_metric;
    if (issue.metric == "new_metric") ++extra_metric;
    if (issue.scenario == "est/gone") ++missing_scenario;
    if (issue.scenario == "est/extra") ++extra_scenario;
  }
  EXPECT_EQ(missing_metric, 1u);
  EXPECT_EQ(extra_metric, 1u);
  EXPECT_EQ(missing_scenario, 1u);
  EXPECT_EQ(extra_scenario, 1u);
}

TEST(CheckerTest, NaNLiveValuesAlwaysFail) {
  // NaN compares false against everything; the checker must not let a
  // broken (NaN-producing) build slide through as "within tolerance".
  const SuiteResult golden = makeSuite(2e-5, 1e-5);
  const SuiteResult live =
      makeSuite(std::numeric_limits<double>::quiet_NaN(), 1e-5);
  EXPECT_FALSE(checkSuite(golden, live).passed());
  EXPECT_FALSE(
      checkSuite(golden, live, {Tolerance{1e300, 1e300}, {}}).passed());
}

TEST(CheckerTest, SuiteNameMismatchIsAnIssue) {
  const SuiteResult golden = makeSuite(2e-5, 1e-5);
  SuiteResult live = golden;
  live.suite = "other";
  EXPECT_FALSE(checkSuite(golden, live).passed());
}

}  // namespace
}  // namespace nanoleak::scenario
