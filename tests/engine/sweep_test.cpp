#include "engine/sweep.h"

#include <gtest/gtest.h>

#include "core/leakage_table.h"
#include "util/error.h"

namespace nanoleak::engine {
namespace {

TEST(SweepSpaceTest, EmptySpaceHasOneImplicitPoint) {
  const SweepSpace space;
  EXPECT_EQ(space.pointCount(), 1u);
  EXPECT_EQ(space.axisCount(), 0u);
}

TEST(SweepSpaceTest, PointCountIsProductOfAxisSizes) {
  const SweepSpace space({{"vector", 4}, {"temperature", 7}, {"flavour", 3}});
  EXPECT_EQ(space.pointCount(), 84u);
  EXPECT_EQ(space.axis(1).name, "temperature");
}

TEST(SweepSpaceTest, LastAxisVariesFastest) {
  const SweepSpace space({{"outer", 2}, {"inner", 3}});
  EXPECT_EQ(space.coordinates(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(space.coordinates(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(space.coordinates(3), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(space.coordinates(5), (std::vector<std::size_t>{1, 2}));
}

TEST(SweepSpaceTest, LinearIndexRoundTrips) {
  const SweepSpace space({{"a", 3}, {"b", 5}, {"c", 2}});
  for (std::size_t linear = 0; linear < space.pointCount(); ++linear) {
    EXPECT_EQ(space.linearIndex(space.coordinates(linear)), linear);
  }
}

TEST(SweepSpaceTest, RejectsEmptyAxesAndBadLookups) {
  EXPECT_THROW(SweepSpace({{"empty", 0}}), Error);
  const SweepSpace space({{"a", 2}});
  EXPECT_THROW(space.coordinates(2), Error);
  EXPECT_THROW(space.linearIndex({2}), Error);
  EXPECT_THROW(space.linearIndex({0, 0}), Error);
  EXPECT_THROW(space.axis(1), Error);
}

TEST(SweepTest, AllInputVectorsFollowVectorIndexOrder) {
  const auto vectors = allInputVectors(gates::GateKind::kNand2);
  ASSERT_EQ(vectors.size(), 4u);
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(core::vectorIndex(vectors[i]), i);
  }
  EXPECT_EQ(vectors[1], (std::vector<bool>{true, false}));  // bit 0 = pin 0
  EXPECT_EQ(allInputVectors(gates::GateKind::kInv).size(), 2u);
  EXPECT_EQ(allInputVectors(gates::GateKind::kNand3).size(), 8u);
}

}  // namespace
}  // namespace nanoleak::engine
