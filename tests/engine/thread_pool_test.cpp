#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.h"

namespace nanoleak::engine {
namespace {

TEST(ThreadPoolTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3},
                              std::size_t{16}, std::size_t{1000}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> visits(257);
      pool.parallelFor(visits.size(), chunk,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           visits[i].fetch_add(1);
                         }
                       });
      for (std::size_t i = 0; i < visits.size(); ++i) {
        EXPECT_EQ(visits[i].load(), 1)
            << "index " << i << " threads " << threads << " chunk " << chunk;
      }
    }
  }
}

TEST(ThreadPoolTest, ThreadCountIncludesCaller) {
  EXPECT_EQ(ThreadPool(1).threadCount(), 1);
  EXPECT_EQ(ThreadPool(4).threadCount(), 4);
  EXPECT_GE(ThreadPool(0).threadCount(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallelFor(0, 8, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroChunkBehavesAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallelFor(10, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);  // chunk clamped to 1
    sum.fetch_add(begin);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> visited{0};
    pool.parallelFor(round + 1, 2, [&](std::size_t begin, std::size_t end) {
      visited.fetch_add(end - begin);
    });
    EXPECT_EQ(visited.load(), static_cast<std::size_t>(round + 1));
  }
}

TEST(ThreadPoolTest, RethrowsFirstChunkException) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallelFor(100, 1,
                         [&](std::size_t begin, std::size_t) {
                           if (begin == 37) {
                             throw std::runtime_error("chunk 37 failed");
                           }
                         }),
        std::runtime_error);
    // The pool must stay usable after a failed loop.
    std::atomic<std::size_t> visited{0};
    pool.parallelFor(16, 2, [&](std::size_t begin, std::size_t end) {
      visited.fetch_add(end - begin);
    });
    EXPECT_EQ(visited.load(), 16u);
  }
}

TEST(ThreadPoolTest, RejectsEmptyBody) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallelFor(4, 1, ChunkBody{}), Error);
}

TEST(ThreadPoolTest, CancellationSkipsUnclaimedChunks) {
  // Deterministic cancellation coverage for the runChunks catch block:
  // with 4 threads and every thread parked inside its first chunk, the
  // thrower's exception must keep the remaining 996 chunks from ever
  // being claimed - exactly 4 bodies run.
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  std::atomic<int> started{0};
  std::atomic<int> executed{0};
  std::atomic<bool> throw_done{false};

  EXPECT_THROW(
      pool.parallelFor(1000, 1,
                       [&](std::size_t, std::size_t) {
                         executed.fetch_add(1);
                         const bool thrower = started.fetch_add(1) == 0;
                         if (thrower) {
                           // Wait until every other thread is inside a
                           // chunk, so no one can claim more work.
                           while (started.load() < kThreads) {
                             std::this_thread::yield();
                           }
                           throw_done.store(true);
                           throw std::runtime_error("cancel the rest");
                         }
                         while (!throw_done.load()) {
                           std::this_thread::yield();
                         }
                       }),
      std::runtime_error);
  EXPECT_EQ(executed.load(), kThreads);

  // The cancelled job left no residue: the next loop visits every index.
  std::atomic<std::size_t> visited{0};
  pool.parallelFor(64, 3, [&](std::size_t begin, std::size_t end) {
    visited.fetch_add(end - begin);
  });
  EXPECT_EQ(visited.load(), 64u);
}

TEST(ThreadPoolTest, ConcurrentPoolsFailIndependently) {
  // Serve-style concurrency: every executor thread owns its own pool
  // (ThreadPool admits one controller at a time), and one executor's
  // failing workload must neither poison nor stall its neighbours.
  constexpr int kOwners = 4;
  std::vector<std::thread> owners;
  std::vector<std::size_t> sums(kOwners, 0);
  std::vector<bool> threw(kOwners, false);
  for (int i = 0; i < kOwners; ++i) {
    owners.emplace_back([&, i] {
      ThreadPool pool(2);
      for (int round = 0; round < 3; ++round) {
        const bool failing_round = (i % 2 == 0) && round == 1;
        std::atomic<std::size_t> sum{0};
        try {
          pool.parallelFor(100, 4, [&](std::size_t begin, std::size_t end) {
            if (failing_round && begin == 48) {
              throw Error("executor workload failed");
            }
            for (std::size_t k = begin; k < end; ++k) {
              sum.fetch_add(k);
            }
          });
          sums[i] += sum.load();
        } catch (const Error&) {
          threw[i] = true;
        }
      }
    });
  }
  for (std::thread& owner : owners) {
    owner.join();
  }
  for (int i = 0; i < kOwners; ++i) {
    EXPECT_EQ(threw[i], i % 2 == 0) << "owner " << i;
    // Two clean rounds of sum 0..99 always complete, even next to
    // failing neighbours.
    EXPECT_GE(sums[i], 2u * 4950u) << "owner " << i;
  }
}

TEST(ThreadPoolTest, InlinePathStopsAtTheThrowingChunk) {
  // threads == 1 runs the inline fast path: the exception propagates
  // immediately and later chunks never run.
  ThreadPool pool(1);
  std::size_t executed = 0;
  EXPECT_THROW(pool.parallelFor(100, 1,
                                [&](std::size_t begin, std::size_t) {
                                  ++executed;
                                  if (begin == 37) {
                                    throw std::runtime_error("stop");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(executed, 38u);  // chunks 0..37 inclusive, nothing after
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // Record the (begin, end) pairs seen at each thread count; the sets must
  // match because reductions key off chunk identity.
  auto boundaries = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> seen(15);
    pool.parallelFor(100, 7, [&](std::size_t begin, std::size_t end) {
      seen[begin / 7] = {begin, end};
    });
    return seen;
  };
  const auto one = boundaries(1);
  EXPECT_EQ(one, boundaries(2));
  EXPECT_EQ(one, boundaries(8));
  EXPECT_EQ(one.back(), (std::pair<std::size_t, std::size_t>{98, 100}));
}

}  // namespace
}  // namespace nanoleak::engine
