#include "engine/table_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "engine/thread_pool.h"
#include "util/error.h"

namespace nanoleak::engine {
namespace {

core::CharacterizationOptions quickOptions() {
  core::CharacterizationOptions options;
  options.loading_grid = {0.0, 1.0e-6};
  options.store_pin_current_grids = false;
  return options;
}

TEST(TableCacheTest, SecondLookupIsAHit) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto first = cache.kindTables(tech, gates::GateKind::kInv,
                                      quickOptions());
  const auto second = cache.kindTables(tech, gates::GateKind::kInv,
                                       quickOptions());
  EXPECT_EQ(first.get(), second.get());  // shared immutable entry
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TableCacheTest, TemperatureChangesTheKey) {
  TableCache cache;
  device::Technology tech = device::defaultTechnology();
  cache.kindTables(tech, gates::GateKind::kInv, quickOptions());
  tech.temperature_k = 350.0;
  cache.kindTables(tech, gates::GateKind::kInv, quickOptions());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TableCacheTest, CornerKeySeparatesKindsAndDeviceParams) {
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  const std::string inv = TableCache::cornerKey(tech, gates::GateKind::kInv,
                                                options);
  EXPECT_NE(inv, TableCache::cornerKey(tech, gates::GateKind::kNand2,
                                       options));
  device::Technology perturbed = tech;
  perturbed.nmos.vth0 += 1e-12;  // tiniest parameter change -> new corner
  EXPECT_NE(inv, TableCache::cornerKey(perturbed, gates::GateKind::kInv,
                                       options));
  device::Technology warmer = tech;
  warmer.temperature_k += 1.0;
  EXPECT_NE(inv, TableCache::cornerKey(warmer, gates::GateKind::kInv,
                                       options));
}

TEST(TableCacheTest, MatchesDirectCharacterization) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  const auto cached = cache.kindTables(tech, gates::GateKind::kInv, options);
  const auto direct =
      core::Characterizer(tech, options).characterizeKind(gates::GateKind::kInv);
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t v = 0; v < direct.size(); ++v) {
    EXPECT_EQ((*cached)[v].nominal.total(), direct[v].nominal.total());
    EXPECT_EQ((*cached)[v].isolated_nominal.subthreshold,
              direct[v].isolated_nominal.subthreshold);
  }
}

TEST(TableCacheTest, LibraryComposesCachedKinds) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  const core::LeakageLibrary library = cache.library(
      tech, {gates::GateKind::kInv, gates::GateKind::kNand2}, options);
  EXPECT_TRUE(library.has(gates::GateKind::kInv));
  EXPECT_TRUE(library.has(gates::GateKind::kNand2));
  EXPECT_EQ(library.meta().temperature_k, tech.temperature_k);
  // Rebuilding the library only hits the cache.
  const auto misses_before = cache.stats().misses;
  cache.library(tech, {gates::GateKind::kInv, gates::GateKind::kNand2},
                options);
  EXPECT_EQ(cache.stats().misses, misses_before);
}

TEST(TableCacheTest, ConcurrentMissesCharacterizeOnce) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  ThreadPool pool(8);
  std::atomic<std::size_t> total_vectors{0};
  pool.parallelFor(16, 1, [&](std::size_t, std::size_t) {
    const auto tables = cache.kindTables(tech, gates::GateKind::kInv,
                                         options);
    total_vectors.fetch_add(tables->size());
  });
  EXPECT_EQ(total_vectors.load(), 16u * 2u);  // INV has two vectors
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 15u);
}

TEST(TableCacheTest, InsertSeedsATaggedCornerWithoutCharacterizing) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  // Seed a recognizable (wrong-on-purpose) table so the lookup provably
  // returns the seeded entry rather than characterizing.
  TableCache::KindTables seeded(1);
  seeded[0].nominal = {1.0, 2.0, 3.0};
  ASSERT_TRUE(
      cache.insert(tech, gates::GateKind::kInv, options, seeded, "test"));
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.size(), 1u);

  const auto tables =
      cache.tryGet(tech, gates::GateKind::kInv, options, "test");
  ASSERT_NE(tables, nullptr);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_EQ((*tables)[0].nominal.total(), 6.0);

  // Duplicate insert is refused and leaves the original entry in place.
  TableCache::KindTables other(1);
  other[0].nominal = {9.0, 9.0, 9.0};
  EXPECT_FALSE(
      cache.insert(tech, gates::GateKind::kInv, options, other, "test"));
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.tryGet(tech, gates::GateKind::kInv, options, "test")
                ->front()
                .nominal.total(),
            6.0);
}

TEST(TableCacheTest, ProvenanceTagIsolatesSeededEntries) {
  TableCache cache;
  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  TableCache::KindTables seeded(1);
  seeded[0].nominal = {1.0, 2.0, 3.0};
  ASSERT_TRUE(cache.insert(tech, gates::GateKind::kInv, options, seeded,
                           "thermal-warm"));

  // Visible under the tag; invisible (and not a miss) to other tags.
  EXPECT_NE(
      cache.tryGet(tech, gates::GateKind::kInv, options, "thermal-warm"),
      nullptr);
  EXPECT_EQ(cache.tryGet(tech, gates::GateKind::kInv, options, "other"),
            nullptr);
  EXPECT_EQ(cache.stats().misses, 0u);

  // Untagged keys are reserved for builder-produced entries: an empty
  // tag is rejected outright, and an untagged kindTables() at the same
  // corner characterizes for real rather than returning seeded tables.
  EXPECT_THROW(
      (void)cache.insert(tech, gates::GateKind::kInv, options, seeded, ""),
      Error);
  EXPECT_THROW(
      (void)cache.tryGet(tech, gates::GateKind::kInv, options, ""), Error);
  const auto characterized =
      cache.kindTables(tech, gates::GateKind::kInv, options);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_NE(characterized->front().nominal.total(), 6.0);
}

TEST(TableCacheTest, SolverPathChangesTheKey) {
  const device::Technology tech = device::defaultTechnology();
  auto options = quickOptions();
  const std::string warm =
      TableCache::cornerKey(tech, gates::GateKind::kInv, options);
  options.solver_path = core::CharacterizationOptions::SolverPath::kLegacy;
  EXPECT_NE(warm,
            TableCache::cornerKey(tech, gates::GateKind::kInv, options));
}

TEST(TableCacheTest, CountsHitsThatJoinAnInFlightMiss) {
  // A controllable builder blocks the miss owner until the test has
  // issued a concurrent lookup for the same key, making "hit joined an
  // in-flight characterization" deterministic.
  std::promise<void> builder_entered;
  std::promise<void> release_builder;
  std::shared_future<void> release = release_builder.get_future().share();
  TableCache cache([&](const device::Technology&, gates::GateKind,
                       const core::CharacterizationOptions&) {
    builder_entered.set_value();
    release.wait();
    return TableCache::KindTables{core::VectorTable{}};
  });

  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  std::thread owner([&] {
    cache.kindTables(tech, gates::GateKind::kInv, options);
  });
  builder_entered.get_future().wait();

  // The miss is now provably in flight.
  std::thread joiner([&] {
    const auto tables = cache.kindTables(tech, gates::GateKind::kInv,
                                         options);
    EXPECT_EQ(tables->size(), 1u);
  });
  // The join is counted the moment the waiter blocks on the shared
  // future; the hit itself is deferred until the build resolves, so a
  // successful-resolution count observed here would deadlock.
  while (cache.stats().coalesced_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(cache.stats().hits, 0u);  // outcome not yet known
  release_builder.set_value();
  owner.join();
  joiner.join();

  TableCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.coalesced_hits, 1u);
  EXPECT_EQ(stats.coalesced_waits, 1u);
  EXPECT_EQ(stats.coalesced_failures, 0u);

  // A lookup after completion is a plain (non-coalesced) hit.
  cache.kindTables(tech, gates::GateKind::kInv, options);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.coalesced_hits, 1u);
  EXPECT_EQ(stats.coalesced_waits, 1u);
}

TEST(TableCacheTest, JoinedBuildThatThrowsIsAFailureNotAHit) {
  // The bug this pins down: a waiter joining an in-flight miss used to
  // count coalesced_hits at join time - before the build's outcome was
  // known - so a failed characterization still inflated the hit
  // counters. The count must follow the future's resolution.
  std::promise<void> builder_entered;
  std::promise<void> release_builder;
  std::shared_future<void> release = release_builder.get_future().share();
  TableCache cache([&](const device::Technology&, gates::GateKind,
                       const core::CharacterizationOptions&)
                       -> TableCache::KindTables {
    builder_entered.set_value();
    release.wait();
    throw Error("characterization blew up");
  });

  const device::Technology tech = device::defaultTechnology();
  const auto options = quickOptions();
  std::thread owner([&] {
    EXPECT_THROW(cache.kindTables(tech, gates::GateKind::kInv, options),
                 Error);
  });
  builder_entered.get_future().wait();

  std::thread joiner([&] {
    EXPECT_THROW(cache.kindTables(tech, gates::GateKind::kInv, options),
                 Error);
  });
  // Deterministic: the joiner has provably joined the in-flight build
  // (coalesced_waits counts at join time) before the failure resolves.
  while (cache.stats().coalesced_waits == 0) {
    std::this_thread::yield();
  }
  release_builder.set_value();
  owner.join();
  joiner.join();

  const TableCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.coalesced_hits, 0u);
  EXPECT_EQ(stats.coalesced_waits, 1u);
  EXPECT_EQ(stats.coalesced_failures, 1u);
  // The failed entry was removed, so the corner can be retried.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TableCacheTest, LruEvictionDropsTheColdestEntry) {
  int builds = 0;
  TableCache cache([&](const device::Technology&, gates::GateKind,
                       const core::CharacterizationOptions&) {
    ++builds;
    return TableCache::KindTables{core::VectorTable{}};
  });
  cache.setMaxEntries(2);

  const auto options = quickOptions();
  device::Technology tech = device::defaultTechnology();
  tech.temperature_k = 300.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);  // A
  tech.temperature_k = 310.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);  // B
  tech.temperature_k = 300.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);  // touch A
  tech.temperature_k = 320.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);  // C evicts B
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // A (recently touched) survived; B (coldest) was the victim.
  tech.temperature_k = 300.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);
  EXPECT_EQ(builds, 3);
  tech.temperature_k = 310.0;
  cache.kindTables(tech, gates::GateKind::kInv, options);
  EXPECT_EQ(builds, 4);  // B re-characterized
}

TEST(TableCacheTest, InFlightEntriesAreNeverEvicted) {
  std::promise<void> builder_entered;
  std::promise<void> release_builder;
  std::shared_future<void> release = release_builder.get_future().share();
  std::atomic<bool> first_build{true};
  TableCache cache([&](const device::Technology&, gates::GateKind,
                       const core::CharacterizationOptions&) {
    if (first_build.exchange(false)) {
      builder_entered.set_value();
      release.wait();
    }
    return TableCache::KindTables{core::VectorTable{}};
  });
  cache.setMaxEntries(1);

  const auto options = quickOptions();
  device::Technology tech = device::defaultTechnology();
  std::thread slow([&] {
    cache.kindTables(tech, gates::GateKind::kInv, options);
  });
  builder_entered.get_future().wait();

  // A second corner lands while the first is still building: the cap of
  // one may only be enforced against finished entries, so the in-flight
  // build survives and the cache transiently holds both.
  device::Technology warmer = tech;
  warmer.temperature_k += 10.0;
  cache.kindTables(warmer, gates::GateKind::kInv, options);
  EXPECT_EQ(cache.size(), 2u);

  release_builder.set_value();
  slow.join();
  // The finished first entry re-arms eviction on the next insert; the
  // shrink path via setMaxEntries also fits now that both are ready.
  cache.setMaxEntries(1);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace nanoleak::engine
