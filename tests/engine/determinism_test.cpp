// The engine's central contract: results are bit-identical regardless of
// thread count, and engine-backed sweeps reproduce the single-threaded
// paths exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/characterizer.h"
#include "core/estimation_plan.h"
#include "core/loading_analyzer.h"
#include "engine/batch_runner.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/units.h"

namespace nanoleak::engine {
namespace {

McSweep smallMcSweep() {
  McSweep sweep;
  sweep.technology = device::defaultTechnology();
  sweep.samples = 41;  // not a multiple of the chunk size on purpose
  sweep.seed = 20050307;
  return sweep;
}

Histogram totalsHistogram(const std::vector<mc::McSample>& samples) {
  std::vector<double> totals;
  totals.reserve(samples.size());
  for (const mc::McSample& s : samples) {
    totals.push_back(toNanoAmps(s.with_loading.total()));
  }
  return Histogram::fromData(totals, 20);
}

TEST(EngineDeterminismTest, McSweepBitIdenticalAcross1And2And8Threads) {
  const McSweep sweep = smallMcSweep();
  BatchRunner runner1(BatchOptions{.threads = 1});
  BatchRunner runner2(BatchOptions{.threads = 2});
  BatchRunner runner8(BatchOptions{.threads = 8});
  const McBatchResult r1 = runner1.run(sweep);
  const McBatchResult r2 = runner2.run(sweep);
  const McBatchResult r8 = runner8.run(sweep);

  ASSERT_EQ(r1.samples.size(), sweep.samples);
  ASSERT_EQ(r2.samples.size(), sweep.samples);
  ASSERT_EQ(r8.samples.size(), sweep.samples);
  for (std::size_t i = 0; i < sweep.samples; ++i) {
    for (const McBatchResult* other : {&r2, &r8}) {
      EXPECT_EQ(r1.samples[i].with_loading.subthreshold,
                other->samples[i].with_loading.subthreshold);
      EXPECT_EQ(r1.samples[i].with_loading.gate,
                other->samples[i].with_loading.gate);
      EXPECT_EQ(r1.samples[i].with_loading.btbt,
                other->samples[i].with_loading.btbt);
      EXPECT_EQ(r1.samples[i].without_loading.total(),
                other->samples[i].without_loading.total());
    }
  }

  // Chunk-order-merged Welford statistics: bit-identical, not just close.
  for (const McBatchResult* other : {&r2, &r8}) {
    EXPECT_EQ(r1.stats.withLoading().total().mean(),
              other->stats.withLoading().total().mean());
    EXPECT_EQ(r1.stats.withLoading().total().variance(),
              other->stats.withLoading().total().variance());
    EXPECT_EQ(r1.stats.withoutLoading().subthreshold().mean(),
              other->stats.withoutLoading().subthreshold().mean());
    EXPECT_EQ(r1.summary.mean_with, other->summary.mean_with);
    EXPECT_EQ(r1.summary.std_shift_pct, other->summary.std_shift_pct);
  }

  // Histograms of the populations are equal bin by bin.
  const Histogram h1 = totalsHistogram(r1.samples);
  for (const McBatchResult* other : {&r2, &r8}) {
    const Histogram h = totalsHistogram(other->samples);
    ASSERT_EQ(h1.binCount(), h.binCount());
    EXPECT_EQ(h1.lo(), h.lo());
    EXPECT_EQ(h1.hi(), h.hi());
    for (std::size_t bin = 0; bin < h1.binCount(); ++bin) {
      EXPECT_EQ(h1.count(bin), h.count(bin));
    }
  }
}

TEST(EngineDeterminismTest, RunBatchedMatchesEngineAndSequentialPath) {
  const McSweep sweep = smallMcSweep();
  const mc::MonteCarloEngine engine(sweep.technology, sweep.sigmas,
                                    sweep.fixture);
  // Sequential reference: null executor on the calling thread.
  const auto sequential = engine.runBatched(sweep.samples, sweep.seed);
  // Engine-backed: pool executor with 4 threads. Lane groups are keyed to
  // absolute trial index, so partitioning must not change a single bit.
  BatchRunner runner(BatchOptions{.threads = 4});
  const auto pooled =
      engine.runBatched(sweep.samples, sweep.seed, runner.mcExecutor());
  const McBatchResult batch = runner.run(sweep);

  // The SIMD-batched population agrees with the scalar per-trial path
  // (runner.run / runSample) within solver tolerance - the lockstep
  // transcendentals and the batched nominal seed differ bit-wise, the
  // converged operating points do not.
  const auto near = [](double got, double want) {
    EXPECT_NEAR(got, want, 1e-6 * std::max(std::fabs(want), 1e-300));
  };
  ASSERT_EQ(sequential.size(), pooled.size());
  ASSERT_EQ(sequential.size(), batch.samples.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].with_loading.total(),
              pooled[i].with_loading.total());
    EXPECT_EQ(sequential[i].without_loading.btbt,
              pooled[i].without_loading.btbt);
    near(sequential[i].with_loading.total(),
         batch.samples[i].with_loading.total());
    near(sequential[i].without_loading.btbt,
         batch.samples[i].without_loading.btbt);
    // Each sample is a pure function of (seed, index).
    near(sequential[i].with_loading.subthreshold,
         engine.runSample(sweep.seed, i).with_loading.subthreshold);
  }

  // With batching disabled, runBatched IS the scalar per-trial path -
  // bit-identical to runSample for every trial.
  mc::MonteCarloEngine scalar_engine(sweep.technology, sweep.sigmas,
                                     sweep.fixture);
  scalar_engine.setUseBatchedSolves(false);
  const auto scalar = scalar_engine.runBatched(sweep.samples, sweep.seed);
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].with_loading.total(),
              batch.samples[i].with_loading.total());
    EXPECT_EQ(scalar[i].without_loading.subthreshold,
              batch.samples[i].without_loading.subthreshold);
  }
}

TEST(EngineDeterminismTest, VectorSweepMatchesDirectAnalyzerLoop) {
  GateVectorSweep sweep;
  sweep.kind = gates::GateKind::kNand2;
  sweep.technology = device::defaultTechnology();
  sweep.loading_amps = {0.0, nA(1000.0), nA(3000.0)};

  BatchRunner runner(BatchOptions{.threads = 4});
  const std::vector<GateVectorResult> results = runner.run(sweep);
  const auto vectors = allInputVectors(sweep.kind);
  ASSERT_EQ(results.size(), vectors.size());

  for (std::size_t v = 0; v < vectors.size(); ++v) {
    core::LoadingAnalyzer analyzer(sweep.kind, vectors[v], sweep.technology);
    ASSERT_EQ(results[v].points.size(), sweep.loading_amps.size());
    for (std::size_t p = 0; p < sweep.loading_amps.size(); ++p) {
      const double amps = sweep.loading_amps[p];
      for (int pin = 0; pin < 2; ++pin) {
        EXPECT_EQ(results[v].points[p].pins[pin].total_pct,
                  analyzer.pinLoadingEffect(pin, amps).total_pct);
      }
      EXPECT_EQ(results[v].points[p].output.total_pct,
                analyzer.outputLoadingEffect(amps).total_pct);
    }
  }
}

TEST(EngineDeterminismTest, CornerSweepMatchesDirectAnalyzerLoop) {
  CornerSweep sweep;
  sweep.technologies = {device::mediciTechnology()};
  sweep.temperatures_k = {273.15, 348.15, 423.15};
  sweep.input_loading_amps = nA(2000.0);
  sweep.output_loading_amps = nA(2000.0);

  BatchRunner runner(BatchOptions{.threads = 8});
  const std::vector<CornerResult> results = runner.run(sweep);
  ASSERT_EQ(results.size(), sweep.temperatures_k.size());

  for (std::size_t t = 0; t < sweep.temperatures_k.size(); ++t) {
    device::Technology tech = device::mediciTechnology();
    tech.temperature_k = sweep.temperatures_k[t];
    core::LoadingAnalyzer analyzer(sweep.kind, sweep.input_vector, tech);
    const core::LoadingEffect expected = analyzer.combinedLoadingContribution(
        sweep.input_loading_amps, sweep.output_loading_amps);
    EXPECT_EQ(results[t].temperature_k, tech.temperature_k);
    EXPECT_EQ(results[t].contribution.subthreshold_pct,
              expected.subthreshold_pct);
    EXPECT_EQ(results[t].contribution.total_pct, expected.total_pct);
    EXPECT_EQ(results[t].nominal.total(), analyzer.nominal().total());
  }
}

TEST(EngineDeterminismTest, PatternSweepSharedPlanBitIdenticalAcrossThreads) {
  // One immutable plan shared by every worker, one workspace per thread,
  // incremental deltas inside chunks - and still bit-identical to the
  // sequential legacy estimator at any thread count and chunk size.
  core::CharacterizationOptions options;
  options.kinds = {gates::GateKind::kNand2, gates::GateKind::kInv};
  options.loading_grid = {0.0, 1.0e-6, 3.0e-6};
  const core::LeakageLibrary library =
      core::Characterizer(device::defaultTechnology(), options)
          .characterize();
  const logic::LogicNetlist netlist = logic::c17();
  const core::LeakageEstimator estimator(netlist, library);
  const core::EstimationPlan& plan = estimator.plan();

  Rng rng(41);
  std::vector<std::vector<bool>> patterns;
  for (int i = 0; i < 53; ++i) {  // not a multiple of any chunk size
    patterns.push_back(logic::randomPattern(plan.sourceCount(), rng));
  }

  std::vector<core::EstimateResult> reference;
  for (const auto& pattern : patterns) {
    reference.push_back(estimator.estimate(pattern));
  }

  for (int threads : {1, 4, 8}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      BatchRunner runner(
          BatchOptions{.threads = threads, .pattern_chunk = chunk});
      const std::vector<core::EstimateResult> results =
          runner.runPatterns(plan, patterns);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(reference[i].total.subthreshold,
                  results[i].total.subthreshold);
        EXPECT_EQ(reference[i].total.gate, results[i].total.gate);
        EXPECT_EQ(reference[i].total.btbt, results[i].total.btbt);
        ASSERT_EQ(reference[i].per_gate.size(), results[i].per_gate.size());
        for (std::size_t g = 0; g < reference[i].per_gate.size(); ++g) {
          EXPECT_EQ(reference[i].per_gate[g].leakage.total(),
                    results[i].per_gate[g].leakage.total());
          EXPECT_EQ(reference[i].per_gate[g].il, results[i].per_gate[g].il);
          EXPECT_EQ(reference[i].per_gate[g].ol, results[i].per_gate[g].ol);
        }
      }
      // The facade overload routes through the same plan path.
      const std::vector<core::EstimateResult> via_facade =
          runner.runPatterns(estimator, patterns);
      ASSERT_EQ(via_facade.size(), reference.size());
      for (std::size_t i = 0; i < via_facade.size(); ++i) {
        EXPECT_EQ(reference[i].total.total(), via_facade[i].total.total());
      }
    }
  }
}

}  // namespace
}  // namespace nanoleak::engine
