#include "engine/plan_cache.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>

#include "engine/table_cache.h"
#include "logic/generators.h"
#include "util/error.h"

namespace nanoleak::engine {
namespace {

core::CharacterizationOptions quickOptions() {
  core::CharacterizationOptions options;
  options.loading_grid = {0.0, 1.0e-6};
  options.store_pin_current_grids = false;
  return options;
}

/// Compiles a real entry for `netlist` the way the scenario runner does:
/// heap-owned netlist and library so the plan's references stay valid.
std::shared_ptr<const PlanCache::Entry> compileEntry(
    const logic::LogicNetlist& netlist, const device::Technology& tech) {
  auto entry = std::make_shared<PlanCache::Entry>();
  auto owned = std::make_unique<const logic::LogicNetlist>(netlist);
  TableCache tables;
  entry->library = std::make_unique<const core::LeakageLibrary>(
      tables.library(tech, core::estimationKinds(*owned), quickOptions()));
  entry->plan = std::make_unique<const core::EstimationPlan>(
      *owned, *entry->library, core::EstimatorOptions{});
  entry->netlist = std::move(owned);
  return entry;
}

TEST(PlanCacheTest, ContentKeyFingerprintsStructureNotNames) {
  const device::Technology tech = device::defaultTechnology();
  const core::EstimatorOptions est;
  const auto copts = quickOptions();

  logic::LogicNetlist a;
  const auto a_in = a.addNet("in");
  const auto a_out = a.addNet("out");
  a.markPrimaryInput(a_in);
  a.markPrimaryOutput(a_out);
  a.addGate(gates::GateKind::kInv, {a_in}, a_out);

  // Same structure, different net and gate names: identical key.
  logic::LogicNetlist b;
  const auto b_in = b.addNet("renamed_input");
  const auto b_out = b.addNet("renamed_output");
  b.markPrimaryInput(b_in);
  b.markPrimaryOutput(b_out);
  b.addGate(gates::GateKind::kInv, {b_in}, b_out, "g_renamed");

  const std::string key_a = PlanCache::contentKey(a, tech, est, copts);
  EXPECT_EQ(key_a, PlanCache::contentKey(b, tech, est, copts));

  // Different gate kind: different key.
  logic::LogicNetlist c;
  const auto c_in = c.addNet("in");
  const auto c_out = c.addNet("out");
  c.markPrimaryInput(c_in);
  c.markPrimaryOutput(c_out);
  c.addGate(gates::GateKind::kBuf, {c_in}, c_out);
  EXPECT_NE(key_a, PlanCache::contentKey(c, tech, est, copts));

  // Corner and option changes: different key.
  device::Technology warmer = tech;
  warmer.temperature_k += 1.0;
  EXPECT_NE(key_a, PlanCache::contentKey(a, warmer, est, copts));
  core::EstimatorOptions no_loading = est;
  no_loading.with_loading = false;
  EXPECT_NE(key_a, PlanCache::contentKey(a, tech, no_loading, copts));
  auto coarse = copts;
  coarse.loading_grid = {0.0};
  EXPECT_NE(key_a, PlanCache::contentKey(a, tech, est, coarse));
}

TEST(PlanCacheTest, SecondLookupSharesTheCompiledPlan) {
  PlanCache cache;
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicNetlist netlist = logic::inverterChain(4);
  const std::string key = PlanCache::contentKey(
      netlist, tech, core::EstimatorOptions{}, quickOptions());

  int builds = 0;
  const auto build = [&] {
    ++builds;
    return compileEntry(netlist, tech);
  };
  const auto first = cache.get(key, build);
  const auto second = cache.get(key, build);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->plan.get(), second->plan.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, RejectsAPartiallyPopulatedEntry) {
  PlanCache cache;
  EXPECT_THROW(cache.get("partial", [] {
    return std::make_shared<PlanCache::Entry>();  // all three null
  }),
               Error);
  // The failed slot was removed; the key can be retried.
  EXPECT_EQ(cache.size(), 0u);
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicNetlist netlist = logic::inverterChain(2);
  const auto entry =
      cache.get("partial", [&] { return compileEntry(netlist, tech); });
  EXPECT_NE(entry->plan.get(), nullptr);
}

TEST(PlanCacheTest, ConcurrentMissesCoalesceOnOneBuild) {
  PlanCache cache;
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicNetlist netlist = logic::inverterChain(2);

  std::promise<void> builder_entered;
  std::promise<void> release_builder;
  std::shared_future<void> release = release_builder.get_future().share();
  const auto blocking_build = [&] {
    builder_entered.set_value();
    release.wait();
    return compileEntry(netlist, tech);
  };

  std::thread owner([&] { cache.get("k", blocking_build); });
  builder_entered.get_future().wait();
  std::thread joiner([&] {
    const auto entry = cache.get("k", blocking_build);
    EXPECT_NE(entry->plan.get(), nullptr);
  });
  while (cache.stats().coalesced_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(cache.stats().hits, 0u);  // outcome counting is deferred
  release_builder.set_value();
  owner.join();
  joiner.join();

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.coalesced_hits, 1u);
  EXPECT_EQ(stats.coalesced_failures, 0u);
}

TEST(PlanCacheTest, JoinedBuildThatThrowsIsAFailureNotAHit) {
  PlanCache cache;
  std::promise<void> builder_entered;
  std::promise<void> release_builder;
  std::shared_future<void> release = release_builder.get_future().share();
  const auto failing_build = [&]() -> std::shared_ptr<const PlanCache::Entry> {
    builder_entered.set_value();
    release.wait();
    throw Error("compilation blew up");
  };

  std::thread owner([&] { EXPECT_THROW(cache.get("k", failing_build), Error); });
  builder_entered.get_future().wait();
  std::thread joiner(
      [&] { EXPECT_THROW(cache.get("k", failing_build), Error); });
  while (cache.stats().coalesced_waits == 0) {
    std::this_thread::yield();
  }
  release_builder.set_value();
  owner.join();
  joiner.join();

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.coalesced_hits, 0u);
  EXPECT_EQ(stats.coalesced_failures, 1u);
  EXPECT_EQ(cache.size(), 0u);  // removed, so the key can be retried
}

TEST(PlanCacheTest, LruEvictionDropsTheColdestPlan) {
  PlanCache cache(2);
  const device::Technology tech = device::defaultTechnology();
  const logic::LogicNetlist netlist = logic::inverterChain(2);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return compileEntry(netlist, tech);
  };

  cache.get("a", build);
  cache.get("b", build);
  cache.get("a", build);  // touch a
  cache.get("c", build);  // evicts b (coldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.get("a", build);
  EXPECT_EQ(builds, 3);  // a survived
  cache.get("b", build);
  EXPECT_EQ(builds, 4);  // b was rebuilt
}

}  // namespace
}  // namespace nanoleak::engine
