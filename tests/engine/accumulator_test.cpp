#include "engine/accumulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::engine {
namespace {

std::vector<device::LeakageBreakdown> syntheticPopulation(std::size_t n) {
  Rng rng(20050307);
  std::vector<device::LeakageBreakdown> population;
  population.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    population.push_back({rng.uniform(1e-9, 5e-6), rng.uniform(1e-9, 2e-6),
                          rng.uniform(1e-10, 4e-7)});
  }
  return population;
}

TEST(LeakageAccumulatorTest, ChunkMergeMatchesSequentialBitExactly) {
  const auto population = syntheticPopulation(103);

  LeakageAccumulator sequential;
  for (const auto& b : population) {
    sequential.add(b);
  }

  // Fixed 8-wide chunks merged in ascending order: the engine's reduction.
  constexpr std::size_t kChunk = 8;
  std::vector<LeakageAccumulator> partials((population.size() + kChunk - 1) /
                                           kChunk);
  for (std::size_t i = 0; i < population.size(); ++i) {
    partials[i / kChunk].add(population[i]);
  }
  LeakageAccumulator merged;
  for (const auto& partial : partials) {
    merged.merge(partial);
  }

  EXPECT_EQ(merged.count(), sequential.count());
  // Welford merge in fixed order is deterministic, though not necessarily
  // bit-equal to sequential accumulation; extrema and counts are exact.
  EXPECT_EQ(merged.total().min(), sequential.total().min());
  EXPECT_EQ(merged.total().max(), sequential.total().max());
  EXPECT_NEAR(merged.total().mean(), sequential.total().mean(),
              1e-12 * sequential.total().mean());
  EXPECT_NEAR(merged.subthreshold().stddev(), sequential.subthreshold().stddev(),
              1e-9 * sequential.subthreshold().stddev());

  // Re-merging the same partials in the same order reproduces the result
  // bit for bit - the property the thread-count invariance rests on.
  LeakageAccumulator again;
  for (const auto& partial : partials) {
    again.merge(partial);
  }
  EXPECT_EQ(again.total().mean(), merged.total().mean());
  EXPECT_EQ(again.total().variance(), merged.total().variance());
  EXPECT_EQ(again.gate().mean(), merged.gate().mean());
}

TEST(HistogramAccumulatorTest, MergeIsExactBinwiseAddition) {
  HistogramAccumulator left(0.0, 10.0, 10);
  HistogramAccumulator right(0.0, 10.0, 10);
  HistogramAccumulator reference(0.0, 10.0, 10);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double value = rng.uniform(-1.0, 11.0);  // exercises clamping too
    (i % 2 == 0 ? left : right).add(value);
    reference.add(value);
  }
  left.merge(right);
  ASSERT_EQ(left.histogram().binCount(), reference.histogram().binCount());
  EXPECT_EQ(left.histogram().totalCount(), reference.histogram().totalCount());
  for (std::size_t bin = 0; bin < reference.histogram().binCount(); ++bin) {
    EXPECT_EQ(left.histogram().count(bin), reference.histogram().count(bin));
  }
}

TEST(HistogramAccumulatorTest, RejectsBinningMismatch) {
  HistogramAccumulator a(0.0, 10.0, 10);
  HistogramAccumulator shifted(0.0, 12.0, 10);
  HistogramAccumulator coarser(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(shifted), Error);
  EXPECT_THROW(a.merge(coarser), Error);
}

TEST(McAccumulatorTest, TracksPairedPopulations) {
  const auto population = syntheticPopulation(32);
  McAccumulator acc;
  for (std::size_t i = 0; i + 1 < population.size(); i += 2) {
    acc.add(population[i], population[i + 1]);
  }
  EXPECT_EQ(acc.count(), 16u);
  EXPECT_EQ(acc.withLoading().count(), 16u);
  EXPECT_EQ(acc.withoutLoading().count(), 16u);

  McAccumulator other;
  other.add(population[0], population[1]);
  acc.merge(other);
  EXPECT_EQ(acc.count(), 17u);
}

}  // namespace
}  // namespace nanoleak::engine
