// Seeded fuzz cross-check: random small .bench circuits (PR-3
// generator style: narrow + wide gates, shared fanout, optional DFFs
// whose outputs become extra sources) are searched exhaustively,
// exactly, and heuristically. Any disagreement fails with the offending
// seed AND the circuit's .bench text in the message, so every
// counterexample is reproducible from the log alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "logic/bench_io.h"
#include "search/optimizer.h"
#include "util/rng.h"

namespace nanoleak::search {
namespace {

/// Coarse loading grid + no pin-current surfaces: tables characterize in
/// a fraction of the default, and coarse grids stress the bound caps (a
/// coarser grid means wider reachable rectangles to bound over).
const core::LeakageLibrary& fuzzLib() {
  static const core::LeakageLibrary library = [] {
    using gates::GateKind;
    core::CharacterizationOptions options;
    // Everything the .bench generator below can produce, including the
    // tree cells the parser introduces when decomposing wide gates.
    options.kinds = {GateKind::kInv,   GateKind::kBuf,   GateKind::kNand2,
                     GateKind::kNand3, GateKind::kNand4, GateKind::kNor2,
                     GateKind::kNor3,  GateKind::kNor4,  GateKind::kAnd2,
                     GateKind::kAnd3,  GateKind::kAnd4,  GateKind::kOr2,
                     GateKind::kOr3,   GateKind::kOr4,   GateKind::kXor2,
                     GateKind::kXnor2};
    options.loading_grid = {0.0, 1.0e-6, 3.0e-6, 6.0e-6};
    options.store_pin_current_grids = false;
    return core::Characterizer(device::defaultTechnology(), options)
        .characterize();
  }();
  return library;
}

/// Random small circuit as .bench text: 3-6 primary inputs plus 0-2
/// DFFs (at most 8 searchable sources, so the exhaustive oracle stays
/// instant), 8-24 gates over the full bench-spelled primitive set with
/// occasional wide gates to exercise tree decomposition. The text is
/// fully determined by the seed, and it IS the failure-message artifact.
std::string randomBenchText(std::uint64_t seed) {
  Rng rng(deriveStreamSeed(20050308, seed));
  const int n_pi = 3 + static_cast<int>(rng.uniformInt(4));    // 3..6
  const int n_dff = static_cast<int>(rng.uniformInt(3));       // 0..2
  const int n_gates = 8 + static_cast<int>(rng.uniformInt(17));  // 8..24

  std::string text;
  std::vector<std::string> driven;
  for (int i = 0; i < n_pi; ++i) {
    const std::string name = "pi" + std::to_string(i);
    text += "INPUT(" + name + ")\n";
    driven.push_back(name);
  }
  // DFF outputs are usable immediately; the statements come last.
  for (int i = 0; i < n_dff; ++i) {
    driven.push_back("q" + std::to_string(i));
  }

  const char* kOps[] = {"AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT",
                        "BUFF"};
  std::vector<std::string> gate_outputs;
  for (int g = 0; g < n_gates; ++g) {
    const std::string op = kOps[rng.uniformInt(8)];
    std::size_t arity;
    if (op == "NOT" || op == "BUFF") {
      arity = 1;
    } else if (rng.bernoulli(0.15) && op != "XOR" && op != "XNOR") {
      arity = 5 + rng.uniformInt(3);  // wide: 5..7, decomposed into trees
    } else if (op == "XOR" || op == "XNOR") {
      arity = 2;
    } else {
      arity = 2 + rng.uniformInt(3);  // 2..4
    }
    const std::string out = "g" + std::to_string(g);
    text += out + " = " + op + "(";
    for (std::size_t pin = 0; pin < arity; ++pin) {
      text += (pin == 0 ? "" : ", ") + driven[rng.uniformInt(driven.size())];
    }
    text += ")\n";
    driven.push_back(out);
    gate_outputs.push_back(out);
  }
  for (int i = 0; i < n_dff; ++i) {
    text += "q" + std::to_string(i) + " = DFF(" +
            gate_outputs[rng.uniformInt(gate_outputs.size())] + ")\n";
  }
  const int n_po = 1 + static_cast<int>(rng.uniformInt(3));
  for (int i = 0; i < n_po; ++i) {
    text += "OUTPUT(" + gate_outputs[rng.uniformInt(gate_outputs.size())] +
            ")\n";
  }
  return text;
}

TEST(SearchFuzzTest, ExactAndHeuristicAgreeWithExhaustiveOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string bench = randomBenchText(seed);
    SCOPED_TRACE("reproduce with seed " + std::to_string(seed) +
                 ", circuit:\n" + bench);
    const logic::LogicNetlist netlist = logic::parseBenchString(bench);
    const core::EstimationPlan plan(netlist, fuzzLib(), {});
    const std::size_t n = plan.sourceCount();
    ASSERT_GE(n, 3u);
    ASSERT_LE(n, 8u);

    const ExhaustiveResult oracle = exhaustiveSearch(plan);
    for (const Objective objective : {Objective::kMin, Objective::kMax}) {
      SCOPED_TRACE(toString(objective));
      const SearchResult& truth =
          objective == Objective::kMin ? oracle.min : oracle.max;

      const SearchResult exact = exactSearch(plan, objective);
      EXPECT_EQ(exact.total, truth.total);
      EXPECT_EQ(exact.vector, truth.vector);
      EXPECT_EQ(exact.leakage.subthreshold, truth.leakage.subthreshold);
      EXPECT_EQ(exact.leakage.gate, truth.leakage.gate);
      EXPECT_EQ(exact.leakage.btbt, truth.leakage.btbt);
      EXPECT_LE(exact.stats.leaf_evals, std::uint64_t{1} << n);
      if (n >= 4) {
        EXPECT_GE(exact.stats.prunes, 1u);
      }

      SearchOptions options;
      options.objective = objective;
      options.algorithm = Algorithm::kHeuristic;
      options.budget = 48;
      options.seed = seed;
      const SearchResult heur = heuristicSearch(plan, options);
      if (objective == Objective::kMin) {
        EXPECT_GE(heur.total, truth.total);
      } else {
        EXPECT_LE(heur.total, truth.total);
      }
    }
  }
}

TEST(SearchFuzzTest, NoLoadingFuzzAgreesToo) {
  // The no-loading accumulation has near-point bounds - a different prune
  // regime worth fuzzing separately.
  for (std::uint64_t seed = 9; seed <= 12; ++seed) {
    const std::string bench = randomBenchText(seed);
    SCOPED_TRACE("reproduce with seed " + std::to_string(seed) +
                 ", circuit:\n" + bench);
    const logic::LogicNetlist netlist = logic::parseBenchString(bench);
    core::EstimatorOptions options;
    options.with_loading = false;
    const core::EstimationPlan plan(netlist, fuzzLib(), options);
    const ExhaustiveResult oracle = exhaustiveSearch(plan);
    for (const Objective objective : {Objective::kMin, Objective::kMax}) {
      const SearchResult exact = exactSearch(plan, objective);
      const SearchResult& truth =
          objective == Objective::kMin ? oracle.min : oracle.max;
      EXPECT_EQ(exact.total, truth.total) << toString(objective);
      EXPECT_EQ(exact.vector, truth.vector) << toString(objective);
    }
  }
}

}  // namespace
}  // namespace nanoleak::search
