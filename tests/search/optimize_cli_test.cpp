// The `nanoleak optimize` subcommand end to end, in-process through
// cliMain: usage-error exit codes, table/csv output, and the
// observability artifacts (--metrics-out / --trace-out) with live
// search.* counters.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "scenario/metrics_io.h"
#include "util/json.h"

namespace nanoleak::scenario {
namespace {

struct CliResult {
  int exit_code;
  std::string out;
  std::string err;
};

CliResult runCli(std::vector<const char*> args) {
  args.insert(args.begin(), "nanoleak");
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      cliMain(static_cast<int>(args.size()), args.data(), out, err);
  return {code, out.str(), err.str()};
}

TEST(OptimizeCliTest, UsageErrorsExitWithCode2AndPrintUsage) {
  for (const std::vector<const char*>& args :
       std::vector<std::vector<const char*>>{
           {"optimize"},                                 // missing circuit
           {"optimize", "c17", "extra"},                 // too many names
           {"optimize", "c17", "--objective", "median"},
           {"optimize", "c17", "--method", "magic"},
           {"optimize", "c17", "--budget", "0"},
           {"optimize", "c17", "--budget", "many"},
           {"optimize", "c17", "--format", "json"},      // table/csv only
           {"optimize", "c17", "--temp", "0"},           // 0 K rejected
           {"optimize", "c17", "--temp", "inf"},
           {"optimize", "c17", "--tmin", "250"},         // thermal-only flag
           {"optimize", "c17", "--out", "f"},            // record-only flag
           {"run", "ci", "--objective", "min"},          // optimize-only flag
           {"thermal", "c17", "--budget", "4"},          // optimize-only flag
       }) {
    const CliResult result = runCli(args);
    EXPECT_EQ(result.exit_code, kExitUsage)
        << args[0] << " " << (args.size() > 1 ? args[1] : "");
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
    EXPECT_NE(result.err.find("error:"), std::string::npos);
  }
}

TEST(OptimizeCliTest, UnknownCircuitIsARuntimeFailure) {
  const CliResult result = runCli({"optimize", "no_such_circuit"});
  EXPECT_EQ(result.exit_code, kExitFailure);
  EXPECT_NE(result.err.find("no_such_circuit"), std::string::npos);
}

TEST(OptimizeCliTest, ExactRunPrintsSummaryAndAssignments) {
  const CliResult result = runCli({"optimize", "c17", "--method", "exact"});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;
  EXPECT_NE(result.out.find("objective min"), std::string::npos);
  EXPECT_NE(result.out.find("engine exact"), std::string::npos);
  EXPECT_NE(result.out.find("best vector"), std::string::npos);
  EXPECT_NE(result.out.find("provably optimal"), std::string::npos);
  EXPECT_NE(result.out.find("yes"), std::string::npos);
  EXPECT_NE(result.out.find("prunes"), std::string::npos);
  // The per-input assignment table names c17's primary inputs.
  EXPECT_NE(result.out.find("G1"), std::string::npos);
}

TEST(OptimizeCliTest, HeuristicCsvRunReportsRestarts) {
  const CliResult result =
      runCli({"optimize", "c17", "--objective", "max", "--method",
              "heuristic", "--budget", "16", "--seed", "3", "--format",
              "csv"});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;
  EXPECT_NE(result.out.find("engine heuristic"), std::string::npos);
  EXPECT_NE(result.out.find("objective max"), std::string::npos);
  EXPECT_NE(result.out.find("quantity,value"), std::string::npos);
  EXPECT_NE(result.out.find("restarts"), std::string::npos);
  EXPECT_NE(result.out.find("provably optimal,no"), std::string::npos);
}

TEST(OptimizeCliTest, WritesParseableArtifactsWithSearchCounters) {
  const std::string metrics_path =
      testing::TempDir() + "optimize_metrics.json";
  const std::string trace_path = testing::TempDir() + "optimize_trace.json";
  const CliResult result = runCli(
      {"optimize", "c17", "--metrics-out", metrics_path.c_str(),
       "--trace-out", trace_path.c_str()});
  ASSERT_EQ(result.exit_code, kExitOk) << result.err;

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good()) << metrics_path;
  std::stringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  const util::JsonValue metrics =
      util::parseJson(metrics_text.str(), "metrics artifact");
  const util::JsonValue* suite = metrics.find("suite");
  ASSERT_NE(suite, nullptr);
  EXPECT_EQ(suite->string, "optimize:c17");
  const util::JsonValue* process = metrics.find("process");
  ASSERT_NE(process, nullptr);
  const util::JsonValue* counters = process->find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* name :
       {"search.nodes_expanded", "search.leaf_evals", "search.prunes",
        "search.exact_runs"}) {
    const util::JsonValue* counter = counters->find(name);
    ASSERT_NE(counter, nullptr) << name;
    EXPECT_GT(counter->number, 0.0) << name;
  }

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << trace_path;
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  const util::JsonValue trace =
      util::parseJson(trace_text.str(), "trace artifact");
  const util::JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_search_span = false;
  for (const util::JsonValue& event : events->array) {
    const util::JsonValue* name = event.find("name");
    saw_search_span =
        saw_search_span || (name != nullptr && name->string == "search.exact");
  }
  EXPECT_TRUE(saw_search_span);
}

}  // namespace
}  // namespace nanoleak::scenario
