// Building blocks of the sleep-vector search: truth masks, ternary
// propagation + trail, per-(gate, vector) leakage intervals, and the
// incremental bound tracker. Each block's contract is checked against a
// straightforward recomputation (full logic simulation, full estimates).
#include "search/bounds.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/characterizer.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "search/activity_heap.h"
#include "search/ternary.h"
#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::search {
namespace {

const core::LeakageLibrary& lib() {
  static const core::LeakageLibrary library = [] {
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    return core::Characterizer(device::defaultTechnology(), options)
        .characterize();
  }();
  return library;
}

TEST(TruthMaskTest, MatchesEvaluateGateOnEveryVector) {
  for (const gates::GateKind kind : gates::combinationalKinds()) {
    const std::uint32_t mask = truthMask(kind);
    const std::size_t pins = static_cast<std::size_t>(gates::inputCount(kind));
    for (std::size_t v = 0; v < (std::size_t{1} << pins); ++v) {
      bool inputs[8] = {};
      for (std::size_t k = 0; k < pins; ++k) {
        inputs[k] = (v >> k) & 1u;
      }
      const bool expected =
          gates::evaluateGate(kind, std::span<const bool>(inputs, pins));
      EXPECT_EQ((mask >> v) & 1u, expected ? 1u : 0u)
          << "kind " << static_cast<int>(kind) << " vector " << v;
    }
  }
}

TEST(TruthMaskTest, RejectsSequentialKinds) {
  EXPECT_THROW(truthMask(gates::GateKind::kDff), Error);
}

TEST(TernaryPropagatorTest, KnownNetsAlwaysAgreeWithFullSimulation) {
  for (const logic::LogicNetlist& netlist :
       {logic::c17(), logic::rippleCarryAdder(4), logic::fanoutStar(6)}) {
    const logic::LogicSimulator sim(netlist);
    TernaryPropagator prop(netlist);
    ASSERT_EQ(prop.sourceCount(), sim.sourceCount());
    Rng rng(7);
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<bool> pattern =
          logic::randomPattern(prop.sourceCount(), rng);
      const std::vector<bool> values = sim.simulate(pattern);
      // Assign one source per level, in a trial-dependent rotation, and
      // check after every level that whatever became known agrees with
      // the full simulation of the complete pattern (partial implications
      // must hold for every completion, this one included).
      for (std::size_t i = 0; i < prop.sourceCount(); ++i) {
        const std::size_t s = (i + trial) % prop.sourceCount();
        EXPECT_FALSE(prop.sourceAssigned(s));
        prop.assign(s, pattern[s]);
        for (logic::NetId net = 0; net < netlist.netCount(); ++net) {
          if (prop.value(net) != Ternary::kUnknown) {
            EXPECT_EQ(prop.value(net) == Ternary::kTrue, values[net])
                << "net " << net << " after assigning source " << s;
          }
        }
      }
      // A full assignment determines every net...
      for (logic::NetId net = 0; net < netlist.netCount(); ++net) {
        EXPECT_NE(prop.value(net), Ternary::kUnknown) << "net " << net;
      }
      // ...and each gate's possible-vector set to the simulated singleton.
      for (logic::GateId g = 0; g < netlist.gateCount(); ++g) {
        const logic::Gate& gate = netlist.gate(g);
        std::uint32_t expected_vector = 0;
        for (std::size_t k = 0; k < gate.inputs.size(); ++k) {
          expected_vector |= values[gate.inputs[k]] ? (1u << k) : 0u;
        }
        EXPECT_EQ(prop.possibleVectors(g), 1u << expected_vector)
            << "gate " << g;
      }
      // Backtracking every level restores the blank state exactly.
      while (prop.level() > 0) {
        prop.backtrack();
      }
      for (logic::NetId net = 0; net < netlist.netCount(); ++net) {
        EXPECT_EQ(prop.value(net), Ternary::kUnknown);
      }
    }
  }
}

TEST(TernaryPropagatorTest, ControllingValueImpliesOutputsEarly) {
  // c17 is all NAND2: a single false input pins the gate's output to true
  // long before the other pin is known.
  const logic::LogicNetlist netlist = logic::c17();
  TernaryPropagator prop(netlist);
  prop.assign(0, false);  // G1 = 0 forces the first NAND's output high.
  std::size_t known_gates = 0;
  for (logic::GateId g = 0; g < netlist.gateCount(); ++g) {
    known_gates +=
        prop.value(netlist.gate(g).output) != Ternary::kUnknown ? 1 : 0;
  }
  EXPECT_GE(known_gates, 1u);
  EXPECT_GE(prop.lastImplied().size(), 2u);  // decision net + implications
}

class BoundsTest : public ::testing::TestWithParam<bool> {};

TEST_P(BoundsTest, IntervalsContainEveryPerGateEstimate) {
  const bool with_loading = GetParam();
  for (const logic::LogicNetlist& netlist :
       {logic::c17(), logic::rippleCarryAdder(4)}) {
    core::EstimatorOptions options;
    options.with_loading = with_loading;
    const core::EstimationPlan plan(netlist, lib(), options);
    const LeakageBounds bounds(plan);
    const logic::LogicSimulator sim(netlist);
    core::EstimationWorkspace ws(plan);
    Rng rng(11);
    for (int trial = 0; trial < 8; ++trial) {
      const std::vector<bool> pattern =
          logic::randomPattern(plan.sourceCount(), rng);
      const core::EstimateResult result = plan.estimate(pattern, ws);
      const std::vector<bool> values = sim.simulate(pattern);
      for (logic::GateId g = 0; g < netlist.gateCount(); ++g) {
        const logic::Gate& gate = netlist.gate(g);
        std::size_t v = 0;
        for (std::size_t k = 0; k < gate.inputs.size(); ++k) {
          v |= values[gate.inputs[k]] ? (std::size_t{1} << k) : 0u;
        }
        const double total = result.per_gate[g].leakage.total();
        EXPECT_LE(bounds.vectorMin(g, v), total)
            << "gate " << g << " vector " << v << " loading "
            << with_loading;
        EXPECT_GE(bounds.vectorMax(g, v), total)
            << "gate " << g << " vector " << v << " loading "
            << with_loading;
      }
    }
  }
}

TEST_P(BoundsTest, RootIntervalContainsEveryFullVectorTotal) {
  const bool with_loading = GetParam();
  const logic::LogicNetlist netlist = logic::c17();
  core::EstimatorOptions options;
  options.with_loading = with_loading;
  const core::EstimationPlan plan(netlist, lib(), options);
  const LeakageBounds bounds(plan);
  TernaryPropagator prop(netlist);
  const BoundTracker tracker(plan, prop, bounds);
  const double root_min = tracker.exactMin();
  const double root_max = tracker.exactMax();
  EXPECT_LT(root_min, root_max);

  core::EstimationWorkspace ws(plan);
  const std::size_t n = plan.sourceCount();
  for (std::size_t bits = 0; bits < (std::size_t{1} << n); ++bits) {
    std::vector<bool> pattern(n);
    for (std::size_t k = 0; k < n; ++k) {
      pattern[k] = (bits >> k) & 1u;
    }
    const double total = plan.estimate(pattern, ws).total.total();
    EXPECT_LE(root_min, total) << "vector " << bits;
    EXPECT_GE(root_max, total) << "vector " << bits;
  }
}

TEST_P(BoundsTest, TrackerTightensMonotonicallyAndPopsExactly) {
  const bool with_loading = GetParam();
  const logic::LogicNetlist netlist = logic::rippleCarryAdder(4);
  core::EstimatorOptions options;
  options.with_loading = with_loading;
  const core::EstimationPlan plan(netlist, lib(), options);
  const LeakageBounds bounds(plan);
  TernaryPropagator prop(netlist);
  BoundTracker tracker(plan, prop, bounds);

  Rng rng(3);
  const std::vector<bool> pattern =
      logic::randomPattern(plan.sourceCount(), rng);
  std::vector<double> mins = {tracker.exactMin()};
  std::vector<double> maxs = {tracker.exactMax()};
  for (std::size_t s = 0; s < plan.sourceCount(); ++s) {
    prop.assign(s, pattern[s]);
    tracker.push(prop.lastImplied());
    // Narrowing possible-vector sets can only tighten the interval.
    EXPECT_GE(tracker.exactMin(), mins.back()) << "level " << s + 1;
    EXPECT_LE(tracker.exactMax(), maxs.back()) << "level " << s + 1;
    // The incremental running sums track the drift-free re-sum closely.
    EXPECT_NEAR(tracker.runningMin(), tracker.exactMin(),
                1e-9 * (1.0 + std::abs(tracker.exactMin())));
    EXPECT_NEAR(tracker.runningMax(), tracker.exactMax(),
                1e-9 * (1.0 + std::abs(tracker.exactMax())));
    mins.push_back(tracker.exactMin());
    maxs.push_back(tracker.exactMax());
  }
  // The fully-assigned interval still contains the real total.
  core::EstimationWorkspace ws(plan);
  const double total = plan.estimate(pattern, ws).total.total();
  EXPECT_LE(tracker.exactMin(), total);
  EXPECT_GE(tracker.exactMax(), total);
  // Popping levels restores each recorded interval bit-for-bit (the
  // per-gate endpoints are restored from the trail, and exactMin/exactMax
  // re-sum them in fixed order).
  for (std::size_t s = plan.sourceCount(); s > 0; --s) {
    tracker.pop();
    prop.backtrack();
    EXPECT_EQ(tracker.exactMin(), mins[s - 1]) << "pop to level " << s - 1;
    EXPECT_EQ(tracker.exactMax(), maxs[s - 1]) << "pop to level " << s - 1;
  }
}

INSTANTIATE_TEST_SUITE_P(LoadingOnOff, BoundsTest, ::testing::Bool());

TEST(ActivityHeapTest, OrdersByScoreWithIndexTieBreak) {
  ActivityHeap heap({1.0, 3.0, 2.0, 3.0});
  EXPECT_EQ(heap.size(), 4u);
  EXPECT_EQ(heap.top(), 1u);  // highest score, lower index wins the tie
  EXPECT_EQ(heap.pop(), 1u);
  EXPECT_EQ(heap.pop(), 3u);
  EXPECT_EQ(heap.pop(), 2u);
  EXPECT_FALSE(heap.contains(2));
  EXPECT_EQ(heap.pop(), 0u);
  EXPECT_TRUE(heap.empty());
}

TEST(ActivityHeapTest, BumpReordersAndRescaleKeepsOrder) {
  ActivityHeap heap({1.0, 2.0, 3.0});
  heap.bump(0, 10.0);  // score 11 overtakes everyone
  EXPECT_EQ(heap.top(), 0u);
  EXPECT_DOUBLE_EQ(heap.score(0), 11.0);
  heap.rescale(0.1);
  EXPECT_EQ(heap.top(), 0u);
  EXPECT_DOUBLE_EQ(heap.score(2), 0.3);
  EXPECT_EQ(heap.pop(), 0u);
  heap.push(0);
  EXPECT_EQ(heap.top(), 0u);  // re-inserted with its retained score
}

}  // namespace
}  // namespace nanoleak::search
