// Property and metamorphic tests of the heuristic engine's contracts:
// it can never beat the exact optimum, it is monotone non-worsening in
// its budget, bit-reproducible for a fixed seed (including across the
// scenario runner's thread counts), and the exact optimum is invariant
// under primary-input permutations.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "logic/bench_io.h"
#include "logic/generators.h"
#include "scenario/runner.h"
#include "search/optimizer.h"

namespace nanoleak::search {
namespace {

const core::LeakageLibrary& lib() {
  static const core::LeakageLibrary library = [] {
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    return core::Characterizer(device::defaultTechnology(), options)
        .characterize();
  }();
  return library;
}

TEST(HeuristicPropertyTest, NeverBeatsTheExactOptimum) {
  for (const char* name : {"c17", "rca4", "mult22"}) {
    const logic::LogicNetlist netlist =
        std::string(name) == "c17"    ? logic::c17()
        : std::string(name) == "rca4" ? logic::rippleCarryAdder(4)
                                      : logic::arrayMultiplier(2);
    const core::EstimationPlan plan(netlist, lib(), {});
    for (const Objective objective : {Objective::kMin, Objective::kMax}) {
      const SearchResult exact = exactSearch(plan, objective);
      for (const std::uint64_t seed : {1u, 7u, 20050307u}) {
        SearchOptions options;
        options.objective = objective;
        options.algorithm = Algorithm::kHeuristic;
        options.budget = 64;
        options.seed = seed;
        const SearchResult heur = heuristicSearch(plan, options);
        SCOPED_TRACE(std::string(name) + " " + toString(objective) +
                     " seed " + std::to_string(seed));
        if (objective == Objective::kMin) {
          EXPECT_GE(heur.total, exact.total);
        } else {
          EXPECT_LE(heur.total, exact.total);
        }
      }
    }
  }
}

TEST(HeuristicPropertyTest, LargerBudgetNeverWorsensTheResult) {
  const logic::LogicNetlist netlist = logic::rippleCarryAdder(4);
  const core::EstimationPlan plan(netlist, lib(), {});
  for (const Objective objective : {Objective::kMin, Objective::kMax}) {
    double previous = objective == Objective::kMin
                          ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
    for (const std::size_t budget : {4u, 16u, 64u, 256u}) {
      SearchOptions options;
      options.objective = objective;
      options.algorithm = Algorithm::kHeuristic;
      options.budget = budget;
      options.seed = 5;
      const SearchResult result = heuristicSearch(plan, options);
      SCOPED_TRACE(std::string(toString(objective)) + " budget " +
                   std::to_string(budget));
      EXPECT_LE(result.stats.leaf_evals, budget);
      if (objective == Objective::kMin) {
        EXPECT_LE(result.total, previous);
      } else {
        EXPECT_GE(result.total, previous);
      }
      previous = result.total;
    }
  }
}

TEST(HeuristicPropertyTest, FixedSeedRepeatsBitIdentically) {
  const logic::LogicNetlist netlist = logic::c17();
  const core::EstimationPlan plan(netlist, lib(), {});
  SearchOptions options;
  options.algorithm = Algorithm::kHeuristic;
  options.budget = 48;
  options.seed = 99;
  const SearchResult a = heuristicSearch(plan, options);
  const SearchResult b = heuristicSearch(plan, options);
  EXPECT_EQ(a.vector, b.vector);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.leakage.subthreshold, b.leakage.subthreshold);
  EXPECT_EQ(a.leakage.gate, b.leakage.gate);
  EXPECT_EQ(a.leakage.btbt, b.leakage.btbt);
  EXPECT_EQ(a.stats.leaf_evals, b.stats.leaf_evals);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.stats.improvements, b.stats.improvements);
}

TEST(HeuristicPropertyTest, ScenarioMetricsAreThreadCountInvariant) {
  // The search itself is single-threaded by design; this pins the whole
  // scenario path (characterization through metric packing) to the
  // repo-wide determinism contract at 1 and 4 engine threads.
  scenario::Scenario sc;
  sc.name = "optimize-thread-check";
  sc.circuit = "c17";
  sc.method = scenario::Method::kOptimize;
  sc.optimize.algorithm = Algorithm::kHeuristic;
  sc.optimize.budget = 32;

  std::vector<scenario::ScenarioResult> results;
  for (const int threads : {1, 4}) {
    engine::BatchRunner runner(engine::BatchOptions{.threads = threads});
    results.push_back(scenario::runScenario(sc, runner));
  }
  ASSERT_EQ(results[0].metrics.size(), results[1].metrics.size());
  for (std::size_t i = 0; i < results[0].metrics.size(); ++i) {
    EXPECT_EQ(results[0].metrics[i].name, results[1].metrics[i].name);
    EXPECT_EQ(results[0].metrics[i].value, results[1].metrics[i].value)
        << results[0].metrics[i].name;
  }
}

/// c17's bench text with its INPUT declarations rotated left by `shift`,
/// permuting the source order while leaving every gate untouched.
std::string rotatedInputsBench(std::size_t shift) {
  const std::string text = logic::toBenchText(logic::c17());
  std::istringstream in(text);
  std::vector<std::string> inputs;
  std::vector<std::string> rest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("INPUT(", 0) == 0) {
      inputs.push_back(line);
    } else {
      rest.push_back(line);
    }
  }
  std::string out;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out += inputs[(i + shift) % inputs.size()] + "\n";
  }
  for (const std::string& l : rest) {
    out += l + "\n";
  }
  return out;
}

TEST(HeuristicPropertyTest, ExactOptimumIsInputPermutationInvariant) {
  const logic::LogicNetlist base = logic::c17();
  const core::EstimationPlan base_plan(base, lib(), {});
  const std::size_t n = base_plan.sourceCount();
  for (const Objective objective : {Objective::kMin, Objective::kMax}) {
    const SearchResult truth = exactSearch(base_plan, objective);
    for (const std::size_t shift : {1u, 2u, 3u}) {
      const logic::LogicNetlist rotated =
          logic::parseBenchString(rotatedInputsBench(shift));
      const core::EstimationPlan plan(rotated, lib(), {});
      ASSERT_EQ(plan.sourceCount(), n);
      const SearchResult result = exactSearch(plan, objective);
      SCOPED_TRACE(std::string(toString(objective)) + " shift " +
                   std::to_string(shift));
      // Same circuit, same gates - the optimum value is bit-identical,
      // and the optimal vector is the same assignment read through the
      // input permutation.
      EXPECT_EQ(result.total, truth.total);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(result.vector[i], truth.vector[(i + shift) % n])
            << "source " << i;
      }
    }
  }
}

}  // namespace
}  // namespace nanoleak::search
