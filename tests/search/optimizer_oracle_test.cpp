// Exhaustive-oracle cross-check of the exact branch-and-bound engine:
// on every oracle circuit (all <= 16 primary inputs, so full enumeration
// is cheap) the B&B must return the true minimum AND maximum leakage
// vector bit-for-bit, across technology flavours and temperatures, while
// provably pruning (fewer leaf evaluations than 2^n, at least one cut).
#include "search/optimizer.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/characterizer.h"
#include "device/device_params.h"
#include "logic/generators.h"
#include "util/error.h"

namespace nanoleak::search {
namespace {

struct Corner {
  const char* flavour;
  double temperature_k;
};

const core::LeakageLibrary& libFor(const Corner& corner) {
  static std::map<std::pair<std::string, double>, core::LeakageLibrary>
      cache;
  const auto key = std::make_pair(std::string(corner.flavour),
                                  corner.temperature_k);
  auto it = cache.find(key);
  if (it == cache.end()) {
    device::Technology tech = key.first == "d25g"
                                  ? device::gateDominatedTechnology()
                                  : device::defaultTechnology();
    tech.temperature_k = corner.temperature_k;
    core::CharacterizationOptions options;
    options.kinds = core::generatorGateKinds();
    it = cache
             .emplace(key,
                      core::Characterizer(tech, options).characterize())
             .first;
  }
  return it->second;
}

logic::LogicNetlist oracleCircuit(const std::string& name) {
  if (name == "c17") return logic::c17();
  if (name == "rca4") return logic::rippleCarryAdder(4);
  if (name == "mult22") return logic::arrayMultiplier(2);
  if (name == "fanout_star6") return logic::fanoutStar(6);
  return logic::inverterChain(8);
}

using OracleParam = std::tuple<const char*, const char*, double>;

class OracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(OracleTest, ExactMatchesExhaustiveBitForBitWhilePruning) {
  const auto& [circuit, flavour, temperature_k] = GetParam();
  const logic::LogicNetlist netlist = oracleCircuit(circuit);
  const core::EstimationPlan plan(netlist,
                                  libFor({flavour, temperature_k}), {});
  const std::size_t n = plan.sourceCount();
  ASSERT_LE(n, 16u);

  const ExhaustiveResult oracle = exhaustiveSearch(plan);
  EXPECT_EQ(oracle.min.stats.leaf_evals, std::uint64_t{1} << n);
  EXPECT_TRUE(oracle.min.exact);
  EXPECT_LE(oracle.min.total, oracle.max.total);

  for (const Objective objective : {Objective::kMin, Objective::kMax}) {
    const SearchResult& truth =
        objective == Objective::kMin ? oracle.min : oracle.max;
    const SearchResult exact = exactSearch(plan, objective);
    SCOPED_TRACE(std::string(circuit) + "/" + flavour + " " +
                 toString(objective));
    EXPECT_TRUE(exact.exact);
    // Bit-identical optimum: same objective value, same decomposition,
    // same (lexicographically smallest) vector.
    EXPECT_EQ(exact.total, truth.total);
    EXPECT_EQ(exact.leakage.subthreshold, truth.leakage.subthreshold);
    EXPECT_EQ(exact.leakage.gate, truth.leakage.gate);
    EXPECT_EQ(exact.leakage.btbt, truth.leakage.btbt);
    EXPECT_EQ(exact.vector, truth.vector);
    // The bound machinery must actually prune: strictly fewer leaf
    // evaluations than exhaustive enumeration and at least one cut
    // subtree (single-input circuits have nothing to prune, so the
    // assertion only applies from 4 sources up).
    EXPECT_LE(exact.stats.leaf_evals, std::uint64_t{1} << n);
    if (n >= 4) {
      EXPECT_LT(exact.stats.leaf_evals, std::uint64_t{1} << n);
      EXPECT_GE(exact.stats.prunes, 1u);
      EXPECT_GE(exact.stats.prune_checks, exact.stats.prunes);
    }
    EXPECT_GE(exact.stats.nodes_expanded, 1u);
    // The root interval reported by the search brackets the optimum.
    EXPECT_LE(exact.stats.root_min_bound, exact.total);
    EXPECT_GE(exact.stats.root_max_bound, exact.total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, OracleTest,
    ::testing::Combine(::testing::Values("c17", "rca4", "mult22",
                                         "fanout_star6", "inv_chain8"),
                       ::testing::Values("d25s", "d25g"),
                       ::testing::Values(300.0, 360.0)));

TEST(OracleNoLoadingTest, ExactMatchesExhaustiveWithoutLoading) {
  // The paper's traditional accumulation: per-gate bounds are near-point
  // intervals, so pruning is at its sharpest - the agreement contract is
  // identical.
  for (const char* circuit : {"c17", "rca4"}) {
    const logic::LogicNetlist netlist = oracleCircuit(circuit);
    core::EstimatorOptions options;
    options.with_loading = false;
    const core::EstimationPlan plan(netlist, libFor({"d25s", 300.0}),
                                    options);
    const std::size_t n = plan.sourceCount();
    const ExhaustiveResult oracle = exhaustiveSearch(plan);
    for (const Objective objective : {Objective::kMin, Objective::kMax}) {
      const SearchResult& truth =
          objective == Objective::kMin ? oracle.min : oracle.max;
      const SearchResult exact = exactSearch(plan, objective);
      SCOPED_TRACE(std::string(circuit) + " " + toString(objective));
      EXPECT_EQ(exact.total, truth.total);
      EXPECT_EQ(exact.vector, truth.vector);
      EXPECT_LT(exact.stats.leaf_evals, std::uint64_t{1} << n);
      EXPECT_GE(exact.stats.prunes, 1u);
    }
  }
}

TEST(OptimizeDispatchTest, AutoPicksExactUnderTheSourceLimit) {
  const logic::LogicNetlist netlist = logic::c17();
  const core::EstimationPlan plan(netlist, libFor({"d25s", 300.0}), {});
  SearchOptions options;  // kAuto, limit 20 >> 5 sources
  EXPECT_TRUE(optimizeVector(plan, options).exact);

  options.exact_source_limit = 4;  // now 5 sources exceed the limit
  const SearchResult heur = optimizeVector(plan, options);
  EXPECT_FALSE(heur.exact);
  EXPECT_GE(heur.stats.restarts, 1u);

  options.algorithm = Algorithm::kExact;  // explicit choice wins over auto
  EXPECT_TRUE(optimizeVector(plan, options).exact);
  options.algorithm = Algorithm::kHeuristic;
  EXPECT_FALSE(optimizeVector(plan, options).exact);
}

TEST(OptimizeDispatchTest, NameConversionsRoundTripAndReject) {
  EXPECT_EQ(objectiveFromString(toString(Objective::kMin)), Objective::kMin);
  EXPECT_EQ(objectiveFromString(toString(Objective::kMax)), Objective::kMax);
  for (const Algorithm a :
       {Algorithm::kAuto, Algorithm::kExact, Algorithm::kHeuristic}) {
    EXPECT_EQ(algorithmFromString(toString(a)), a);
  }
  EXPECT_THROW(objectiveFromString("median"), Error);
  EXPECT_THROW(algorithmFromString("magic"), Error);
}

TEST(LexLessTest, OrdersFalseBeforeTrueAtFirstDifference) {
  EXPECT_TRUE(lexLess({false, true}, {true, false}));
  EXPECT_FALSE(lexLess({true, false}, {false, true}));
  EXPECT_FALSE(lexLess({false, true}, {false, true}));
  EXPECT_TRUE(lexLess({true, false, false}, {true, false, true}));
}

}  // namespace
}  // namespace nanoleak::search
