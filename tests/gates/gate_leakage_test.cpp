// Gate-level leakage behaviour: stacking effect, vector dependence,
// Eq. (6)-style component inventories - solved at transistor level.
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <tuple>
#include <vector>

#include "device/device_params.h"
#include "gates/gate_builder.h"
#include "gates/gate_library.h"
#include "util/units.h"

namespace nanoleak::gates {
namespace {

device::LeakageBreakdown leak(GateKind kind, std::vector<bool> vec,
                              const device::Technology& tech =
                                  device::defaultTechnology()) {
  std::array<bool, 8> flat{};
  for (std::size_t i = 0; i < vec.size(); ++i) {
    flat[i] = vec[i];
  }
  return isolatedGateLeakage(
      kind, std::span<const bool>(flat.data(), vec.size()), tech);
}

TEST(GateLeakageTest, InverterLeakagePositiveBothStates) {
  for (bool in : {false, true}) {
    const device::LeakageBreakdown l = leak(GateKind::kInv, {in});
    EXPECT_GT(l.subthreshold, 0.0);
    EXPECT_GT(l.gate, 0.0);
    EXPECT_GT(l.btbt, 0.0);
  }
}

TEST(GateLeakageTest, StackingEffectReducesSubthreshold) {
  // Paper [8,9]: two series OFF transistors leak far less than one.
  // NAND2 "00" stacks two off NMOS; "01"/"10" have a single blocking
  // device, so "00" must have the lowest subthreshold leakage.
  const double sub00 = leak(GateKind::kNand2, {false, false}).subthreshold;
  const double sub01 = leak(GateKind::kNand2, {true, false}).subthreshold;
  const double sub10 = leak(GateKind::kNand2, {false, true}).subthreshold;
  EXPECT_LT(sub00, 0.7 * sub01);
  EXPECT_LT(sub00, 0.7 * sub10);
}

TEST(GateLeakageTest, NandVectorDependenceIsTotalOrdering) {
  // Every vector yields a distinct total; "00" is minimal for the
  // subthreshold-dominated device (paper section 4).
  std::vector<double> totals;
  for (std::size_t v = 0; v < 4; ++v) {
    totals.push_back(
        leak(GateKind::kNand2, {(v & 1) != 0, (v & 2) != 0}).total());
  }
  EXPECT_LT(totals[0], totals[1]);
  EXPECT_LT(totals[0], totals[2]);
  EXPECT_LT(totals[0], totals[3]);
}

TEST(GateLeakageTest, MinimumLeakageVectorDependsOnDeviceFlavour) {
  // Paper section 4: sub-dominated -> minimum at "00"; gate-dominated ->
  // the minimum moves to a vector with fewer tunneling paths ("10" in the
  // paper). We assert the weaker, portable property: the argmin differs
  // or the "00" margin shrinks dramatically.
  auto argmin = [&](const device::Technology& tech) {
    std::size_t best = 0;
    double best_total = 1e9;
    for (std::size_t v = 0; v < 4; ++v) {
      const double total =
          leak(GateKind::kNand2, {(v & 1) != 0, (v & 2) != 0}, tech).total();
      if (total < best_total) {
        best_total = total;
        best = v;
      }
    }
    return best;
  };
  const std::size_t min_sub = argmin(device::defaultTechnology());
  EXPECT_EQ(min_sub, 0u);  // "00" for subthreshold-dominated
  // For the gate-dominated flavour the ranking must change measurably.
  const device::Technology gate_tech = device::gateDominatedTechnology();
  const double r_sub =
      leak(GateKind::kNand2, {false, false}).total() /
      leak(GateKind::kNand2, {true, false}).total();
  const double r_gate =
      leak(GateKind::kNand2, {false, false}, gate_tech).total() /
      leak(GateKind::kNand2, {true, false}, gate_tech).total();
  EXPECT_GT(r_gate, r_sub);
}

TEST(GateLeakageTest, WiderFanInLeaksMoreAtAllOnes) {
  // All-ones NAND: output low, parallel PMOS all off and leaking.
  const double n2 = leak(GateKind::kNand2, {true, true}).total();
  const double n3 = leak(GateKind::kNand3, {true, true, true}).total();
  const double n4 =
      leak(GateKind::kNand4, {true, true, true, true}).total();
  EXPECT_GT(n3, n2);
  EXPECT_GT(n4, n3);
}

TEST(GateLeakageTest, CompoundCellsSumTheirStages) {
  // AND2 = NAND2 + INV: its leakage exceeds the bare NAND2's at the same
  // vector (extra inverter stage).
  for (std::size_t v = 0; v < 4; ++v) {
    const std::vector<bool> vec{(v & 1) != 0, (v & 2) != 0};
    EXPECT_GT(leak(GateKind::kAnd2, vec).total(),
              leak(GateKind::kNand2, vec).total());
  }
}

TEST(GateLeakageTest, Xor2LeakageReasonable) {
  // XOR2 (12T) leaks a few times an inverter at any vector.
  const double inv = leak(GateKind::kInv, {false}).total();
  for (std::size_t v = 0; v < 4; ++v) {
    const double x =
        leak(GateKind::kXor2, {(v & 1) != 0, (v & 2) != 0}).total();
    EXPECT_GT(x, inv);
    EXPECT_LT(x, 12.0 * inv);
  }
}

struct LeakageSweepCase {
  GateKind kind;
  std::size_t vector_index;
};

class AllKindsAllVectors
    : public ::testing::TestWithParam<LeakageSweepCase> {};

TEST_P(AllKindsAllVectors, SolvesAndDecomposes) {
  const auto [kind, v] = GetParam();
  const int pins = inputCount(kind);
  std::vector<bool> vec(static_cast<std::size_t>(pins));
  for (int k = 0; k < pins; ++k) {
    vec[static_cast<std::size_t>(k)] =
        ((v >> static_cast<std::size_t>(k)) & 1) != 0;
  }
  const device::LeakageBreakdown l = leak(kind, vec);
  EXPECT_GT(l.total(), 0.0);
  EXPECT_GT(l.subthreshold, 0.0);
  EXPECT_GT(l.gate, 0.0);
  EXPECT_GE(l.btbt, 0.0);
  // Sanity ceiling: no cell leaks more than 50x an inverter.
  EXPECT_LT(toNanoAmps(l.total()), 50.0 * 900.0);
}

std::vector<LeakageSweepCase> allCases() {
  std::vector<LeakageSweepCase> cases;
  for (GateKind kind : combinationalKinds()) {
    const auto count = std::size_t{1}
                       << static_cast<std::size_t>(inputCount(kind));
    for (std::size_t v = 0; v < count; ++v) {
      cases.push_back({kind, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllKindsAllVectors, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<LeakageSweepCase>& info) {
      return std::string(toString(info.param.kind)) + "_v" +
             std::to_string(info.param.vector_index);
    });

}  // namespace
}  // namespace nanoleak::gates
