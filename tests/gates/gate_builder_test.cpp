#include "gates/gate_builder.h"

#include <gtest/gtest.h>

#include <array>

#include "circuit/dc_solver.h"
#include "util/error.h"

namespace nanoleak::gates {
namespace {

using circuit::Netlist;
using circuit::NodeId;

struct Fixture {
  Netlist netlist;
  NodeId vdd;
  NodeId gnd;
  std::vector<NodeId> ins;
  NodeId out;
};

Fixture makeFixture(int pins) {
  Fixture fx;
  fx.vdd = fx.netlist.addNode("VDD");
  fx.gnd = fx.netlist.addNode("GND");
  const device::Technology t = device::defaultTechnology();
  fx.netlist.fixVoltage(fx.vdd, t.vdd);
  fx.netlist.fixVoltage(fx.gnd, 0.0);
  for (int i = 0; i < pins; ++i) {
    fx.ins.push_back(fx.netlist.addNode("in" + std::to_string(i)));
    fx.netlist.fixVoltage(fx.ins.back(), 0.0);
  }
  fx.out = fx.netlist.addNode("out");
  return fx;
}

TEST(GateBuilderTest, InverterCreatesTwoDevices) {
  Fixture fx = makeFixture(1);
  GateNetlistBuilder builder(fx.netlist, device::defaultTechnology(), fx.vdd,
                             fx.gnd);
  builder.instantiate(GateKind::kInv, fx.ins, fx.out, 7);
  ASSERT_EQ(fx.netlist.deviceCount(), 2u);
  int nmos = 0;
  int pmos = 0;
  for (const auto& dev : fx.netlist.devices()) {
    EXPECT_EQ(dev.owner, 7);
    EXPECT_EQ(dev.gate, fx.ins[0]);
    EXPECT_EQ(dev.drain, fx.out);
    if (dev.mosfet.params().polarity == device::Polarity::kNmos) {
      ++nmos;
      EXPECT_EQ(dev.source, fx.gnd);
      EXPECT_EQ(dev.bulk, fx.gnd);
    } else {
      ++pmos;
      EXPECT_EQ(dev.source, fx.vdd);
      EXPECT_EQ(dev.bulk, fx.vdd);
    }
  }
  EXPECT_EQ(nmos, 1);
  EXPECT_EQ(pmos, 1);
}

TEST(GateBuilderTest, PmosIsBetaTimesWider) {
  Fixture fx = makeFixture(1);
  const device::Technology t = device::defaultTechnology();
  GateNetlistBuilder builder(fx.netlist, t, fx.vdd, fx.gnd);
  builder.instantiate(GateKind::kInv, fx.ins, fx.out, 0);
  double wn = 0.0;
  double wp = 0.0;
  for (const auto& dev : fx.netlist.devices()) {
    if (dev.mosfet.params().polarity == device::Polarity::kNmos) {
      wn = dev.mosfet.width();
    } else {
      wp = dev.mosfet.width();
    }
  }
  EXPECT_DOUBLE_EQ(wn, t.unit_width_n);
  EXPECT_DOUBLE_EQ(wp, t.unit_width_n * t.beta_ratio);
}

TEST(GateBuilderTest, SeriesStackIsUpsized) {
  Fixture fx = makeFixture(3);
  const device::Technology t = device::defaultTechnology();
  GateNetlistBuilder builder(fx.netlist, t, fx.vdd, fx.gnd);
  builder.instantiate(GateKind::kNand3, fx.ins, fx.out, 0);
  // NAND3: 3 series NMOS (3x unit) + 3 parallel PMOS (1x beta unit).
  ASSERT_EQ(fx.netlist.deviceCount(), 6u);
  for (const auto& dev : fx.netlist.devices()) {
    if (dev.mosfet.params().polarity == device::Polarity::kNmos) {
      EXPECT_DOUBLE_EQ(dev.mosfet.width(), 3.0 * t.unit_width_n);
    } else {
      EXPECT_DOUBLE_EQ(dev.mosfet.width(), t.beta_ratio * t.unit_width_n);
    }
  }
}

TEST(GateBuilderTest, StackNodesCreated) {
  Fixture fx = makeFixture(3);
  GateNetlistBuilder builder(fx.netlist, device::defaultTechnology(), fx.vdd,
                             fx.gnd);
  const std::size_t before = fx.netlist.nodeCount();
  builder.instantiate(GateKind::kNand3, fx.ins, fx.out, 0);
  // Two internal stack nodes for the 3-deep NMOS chain.
  EXPECT_EQ(fx.netlist.nodeCount(), before + 2);
  EXPECT_EQ(builder.seeds().size(), 2u);
}

TEST(GateBuilderTest, MultiStageCellCreatesInternalNets) {
  Fixture fx = makeFixture(2);
  GateNetlistBuilder builder(fx.netlist, device::defaultTechnology(), fx.vdd,
                             fx.gnd);
  const std::size_t before = fx.netlist.nodeCount();
  const std::array<bool, 2> vals{false, true};
  builder.instantiate(GateKind::kAnd2, fx.ins, fx.out, 0,
                      std::span<const bool>(vals.data(), 2));
  // AND2 = NAND2 stage (1 stack node) + INV stage; one internal stage net.
  EXPECT_EQ(fx.netlist.nodeCount(), before + 2);
  EXPECT_EQ(fx.netlist.deviceCount(), 6u);
  // Stage-output seed must be the NAND2 logic value (true for 01).
  bool found_stage_seed = false;
  for (const auto& [node, voltage] : builder.seeds()) {
    if (voltage > 0.9) {
      found_stage_seed = true;
    }
    (void)node;
  }
  EXPECT_TRUE(found_stage_seed);
}

TEST(GateBuilderTest, ArityChecked) {
  Fixture fx = makeFixture(1);
  GateNetlistBuilder builder(fx.netlist, device::defaultTechnology(), fx.vdd,
                             fx.gnd);
  EXPECT_THROW(builder.instantiate(GateKind::kNand2, fx.ins, fx.out, 0),
               Error);
}

TEST(GateBuilderTest, VariationProviderIsCalledPerTransistor) {
  Fixture fx = makeFixture(2);
  GateNetlistBuilder builder(fx.netlist, device::defaultTechnology(), fx.vdd,
                             fx.gnd);
  int calls = 0;
  const VariationProvider provider = [&calls]() {
    ++calls;
    device::DeviceVariation v;
    v.delta_vth = 0.001 * calls;
    return v;
  };
  builder.instantiate(GateKind::kNand2, fx.ins, fx.out, 0, {}, provider);
  EXPECT_EQ(calls, 4);
  // Each device received its own draw.
  EXPECT_NE(fx.netlist.devices()[0].mosfet.variation().delta_vth,
            fx.netlist.devices()[1].mosfet.variation().delta_vth);
}

}  // namespace
}  // namespace nanoleak::gates
