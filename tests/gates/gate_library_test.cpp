#include "gates/gate_library.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "util/error.h"

namespace nanoleak::gates {
namespace {

std::vector<bool> bits(std::size_t value, int width) {
  std::vector<bool> out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out[static_cast<std::size_t>(i)] =
        ((value >> static_cast<std::size_t>(i)) & 1) != 0;
  }
  return out;
}

bool eval(GateKind kind, std::size_t value) {
  const int width = inputCount(kind);
  const std::vector<bool> in = bits(value, width);
  std::array<bool, 8> flat{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    flat[i] = in[i];
  }
  return evaluateGate(kind,
                      std::span<const bool>(flat.data(), in.size()));
}

TEST(GateLibraryTest, NamesRoundTrip) {
  for (GateKind kind : combinationalKinds()) {
    EXPECT_EQ(gateKindFromString(toString(kind)), kind);
  }
  EXPECT_EQ(gateKindFromString("not"), GateKind::kInv);
  EXPECT_EQ(gateKindFromString("BUFF"), GateKind::kBuf);
  EXPECT_EQ(gateKindFromString("dff"), GateKind::kDff);
  EXPECT_THROW(gateKindFromString("FLUXCAP"), ParseError);
}

TEST(GateLibraryTest, InverterTruth) {
  EXPECT_TRUE(eval(GateKind::kInv, 0));
  EXPECT_FALSE(eval(GateKind::kInv, 1));
  EXPECT_FALSE(eval(GateKind::kBuf, 0));
  EXPECT_TRUE(eval(GateKind::kBuf, 1));
}

TEST(GateLibraryTest, NandNorTruthTables) {
  for (int n = 2; n <= 4; ++n) {
    const GateKind nand = n == 2   ? GateKind::kNand2
                          : n == 3 ? GateKind::kNand3
                                   : GateKind::kNand4;
    const GateKind nor = n == 2   ? GateKind::kNor2
                         : n == 3 ? GateKind::kNor3
                                  : GateKind::kNor4;
    const auto all = std::size_t{1} << static_cast<std::size_t>(n);
    for (std::size_t v = 0; v < all; ++v) {
      EXPECT_EQ(eval(nand, v), v != all - 1) << "NAND" << n << " v=" << v;
      EXPECT_EQ(eval(nor, v), v == 0) << "NOR" << n << " v=" << v;
    }
  }
}

TEST(GateLibraryTest, AndOrTruthTables) {
  for (int n = 2; n <= 4; ++n) {
    const GateKind and_k = n == 2   ? GateKind::kAnd2
                           : n == 3 ? GateKind::kAnd3
                                    : GateKind::kAnd4;
    const GateKind or_k = n == 2   ? GateKind::kOr2
                          : n == 3 ? GateKind::kOr3
                                   : GateKind::kOr4;
    const auto all = std::size_t{1} << static_cast<std::size_t>(n);
    for (std::size_t v = 0; v < all; ++v) {
      EXPECT_EQ(eval(and_k, v), v == all - 1);
      EXPECT_EQ(eval(or_k, v), v != 0);
    }
  }
}

TEST(GateLibraryTest, XorXnorTruth) {
  EXPECT_FALSE(eval(GateKind::kXor2, 0b00));
  EXPECT_TRUE(eval(GateKind::kXor2, 0b01));
  EXPECT_TRUE(eval(GateKind::kXor2, 0b10));
  EXPECT_FALSE(eval(GateKind::kXor2, 0b11));
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(eval(GateKind::kXnor2, v), !eval(GateKind::kXor2, v));
  }
}

TEST(GateLibraryTest, Aoi21Oai21Truth) {
  // AOI21: out = !((a & b) | c); pins a=0, b=1, c=2.
  for (std::size_t v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const bool c = (v & 4) != 0;
    EXPECT_EQ(eval(GateKind::kAoi21, v), !((a && b) || c)) << v;
    EXPECT_EQ(eval(GateKind::kOai21, v), !((a || b) && c)) << v;
  }
}

TEST(GateLibraryTest, Mux2Truth) {
  // pins: in0, in1, select.
  for (std::size_t v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const bool s = (v & 4) != 0;
    EXPECT_EQ(eval(GateKind::kMux2, v), s ? b : a) << v;
  }
}

TEST(GateLibraryTest, DualSwapsSeriesParallel) {
  const SwitchExpr expr = SwitchExpr::series(
      {SwitchExpr::leaf(SignalRef::input(0)),
       SwitchExpr::parallel({SwitchExpr::leaf(SignalRef::input(1)),
                             SwitchExpr::leaf(SignalRef::input(2))})});
  const SwitchExpr dual = expr.dual();
  EXPECT_EQ(dual.kind, SwitchExpr::Kind::kParallel);
  ASSERT_EQ(dual.children.size(), 2u);
  EXPECT_EQ(dual.children[1].kind, SwitchExpr::Kind::kSeries);
  // Dual of dual is the original structure.
  const SwitchExpr twice = dual.dual();
  EXPECT_EQ(twice.kind, SwitchExpr::Kind::kSeries);
  EXPECT_EQ(twice.switchCount(), expr.switchCount());
}

TEST(GateLibraryTest, PullUpIsComplementOfPullDown) {
  // Static CMOS correctness: for every kind and vector, exactly one of the
  // (pull-down, dual pull-up) networks conducts.
  for (GateKind kind : combinationalKinds()) {
    const CellTopology& cell = cellTopology(kind);
    const int pins = inputCount(kind);
    const auto all = std::size_t{1} << static_cast<std::size_t>(pins);
    for (std::size_t v = 0; v < all; ++v) {
      std::array<bool, 8> in{};
      for (int k = 0; k < pins; ++k) {
        in[static_cast<std::size_t>(k)] =
            ((v >> static_cast<std::size_t>(k)) & 1) != 0;
      }
      std::array<bool, 32> internals{};
      for (std::size_t s = 0; s < cell.stages.size(); ++s) {
        const std::span<const bool> input_span(in.data(),
                                               static_cast<std::size_t>(pins));
        const std::span<const bool> internal_span(internals.data(), s);
        const bool pd = cell.stages[s].pull_down.conducts(input_span,
                                                          internal_span);
        // For the PMOS network, a switch conducts when its signal is LOW,
        // i.e. evaluate the dual on complemented signals.
        std::array<bool, 8> in_c{};
        for (int k = 0; k < pins; ++k) {
          in_c[static_cast<std::size_t>(k)] =
              !in[static_cast<std::size_t>(k)];
        }
        std::array<bool, 32> internals_c{};
        for (std::size_t j = 0; j < s; ++j) {
          internals_c[j] = !internals[j];
        }
        const bool pu = cell.stages[s].pull_down.dual().conducts(
            std::span<const bool>(in_c.data(), static_cast<std::size_t>(pins)),
            std::span<const bool>(internals_c.data(), s));
        EXPECT_NE(pd, pu) << toString(kind) << " stage " << s << " v=" << v;
        internals[s] = !pd;
      }
    }
  }
}

TEST(GateLibraryTest, TransistorCounts) {
  EXPECT_EQ(cellTopology(GateKind::kInv).transistorCount(), 2);
  EXPECT_EQ(cellTopology(GateKind::kBuf).transistorCount(), 4);
  EXPECT_EQ(cellTopology(GateKind::kNand2).transistorCount(), 4);
  EXPECT_EQ(cellTopology(GateKind::kNand4).transistorCount(), 8);
  EXPECT_EQ(cellTopology(GateKind::kAnd2).transistorCount(), 6);
  EXPECT_EQ(cellTopology(GateKind::kXor2).transistorCount(), 12);
  EXPECT_EQ(cellTopology(GateKind::kAoi21).transistorCount(), 6);
  EXPECT_EQ(cellTopology(GateKind::kMux2).transistorCount(), 12);
}

TEST(GateLibraryTest, DffHasNoTopology) {
  EXPECT_FALSE(hasTopology(GateKind::kDff));
  EXPECT_THROW(cellTopology(GateKind::kDff), Error);
  EXPECT_EQ(inputCount(GateKind::kDff), 1);
}

TEST(GateLibraryTest, ArityMismatchThrows) {
  const std::array<bool, 1> one{true};
  EXPECT_THROW(evaluateGate(GateKind::kNand2,
                            std::span<const bool>(one.data(), 1)),
               Error);
}

}  // namespace
}  // namespace nanoleak::gates
