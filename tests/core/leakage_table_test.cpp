#include "core/leakage_table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace nanoleak::core {
namespace {

TEST(AxisTest, RejectsBadPoints) {
  EXPECT_THROW(Axis(std::vector<double>{}), Error);
  EXPECT_THROW(Axis({1.0, 1.0}), Error);
  EXPECT_THROW(Axis({2.0, 1.0}), Error);
}

TEST(AxisTest, LocateClampsAndInterpolates) {
  const Axis axis({0.0, 1.0, 3.0});
  EXPECT_EQ(axis.locate(-5.0).index, 0u);
  EXPECT_DOUBLE_EQ(axis.locate(-5.0).fraction, 0.0);
  EXPECT_EQ(axis.locate(10.0).index, 1u);
  EXPECT_DOUBLE_EQ(axis.locate(10.0).fraction, 1.0);
  const auto mid = axis.locate(2.0);
  EXPECT_EQ(mid.index, 1u);
  EXPECT_DOUBLE_EQ(mid.fraction, 0.5);
  const auto first = axis.locate(0.5);
  EXPECT_EQ(first.index, 0u);
  EXPECT_DOUBLE_EQ(first.fraction, 0.5);
}

TEST(AxisTest, SinglePointAxis) {
  const Axis axis(std::vector<double>{0.0});
  EXPECT_EQ(axis.locate(123.0).index, 0u);
  EXPECT_DOUBLE_EQ(axis.locate(123.0).fraction, 0.0);
}

TEST(Grid2DTest, BilinearInterpolationIsExactOnPlane) {
  // f(i, j) = 2i + 3j is reproduced exactly by bilinear interpolation.
  const Axis rows({0.0, 1.0, 2.0});
  const Axis cols({0.0, 1.0});
  Grid2D grid(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      grid.at(i, j) = 2.0 * static_cast<double>(i) +
                      3.0 * static_cast<double>(j);
    }
  }
  for (double x : {0.0, 0.4, 1.5, 2.0}) {
    for (double y : {0.0, 0.3, 1.0}) {
      EXPECT_NEAR(grid.interpolate(rows.locate(x), cols.locate(y)),
                  2.0 * x + 3.0 * y, 1e-12);
    }
  }
}

TEST(Grid2DTest, OutOfRangeThrows) {
  Grid2D grid(2, 2);
  EXPECT_THROW(grid.at(2, 0), Error);
  EXPECT_THROW(grid.at(0, 2), Error);
}

TEST(VectorIndexTest, LittleEndianPins) {
  EXPECT_EQ(vectorIndex({false, false}), 0u);
  EXPECT_EQ(vectorIndex({true, false}), 1u);
  EXPECT_EQ(vectorIndex({false, true}), 2u);
  EXPECT_EQ(vectorIndex({true, true}), 3u);
}

VectorTable makeTable() {
  VectorTable table;
  table.nominal = {1e-7, 2e-7, 3e-8};
  table.isolated_nominal = {0.9e-7, 1.9e-7, 2.9e-8};
  table.pin_current = {5e-8, -4e-8};
  table.il_axis = Axis({0.0, 1e-6});
  table.ol_axis = Axis({0.0, 2e-6});
  table.subthreshold = Grid2D(2, 2);
  table.gate = Grid2D(2, 2);
  table.btbt = Grid2D(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      table.subthreshold.at(i, j) = 1e-7 * (1.0 + static_cast<double>(i));
      table.gate.at(i, j) = 2e-7;
      table.btbt.at(i, j) = 3e-8 * (1.0 + static_cast<double>(j));
    }
  }
  return table;
}

TEST(VectorTableTest, LookupInterpolates) {
  const VectorTable table = makeTable();
  const auto mid = table.lookup(0.5e-6, 0.0);
  EXPECT_NEAR(mid.subthreshold, 1.5e-7, 1e-15);
  EXPECT_NEAR(mid.gate, 2e-7, 1e-15);
  const auto corner = table.lookup(1e-6, 2e-6);
  EXPECT_NEAR(corner.subthreshold, 2e-7, 1e-15);
  EXPECT_NEAR(corner.btbt, 6e-8, 1e-15);
}

TEST(VectorTableTest, PinCurrentFallsBackToNominal) {
  const VectorTable table = makeTable();
  EXPECT_DOUBLE_EQ(table.pinCurrentAt(0, 1e-6, 1e-6), 5e-8);
  EXPECT_DOUBLE_EQ(table.pinCurrentAt(1, 0.0, 0.0), -4e-8);
  EXPECT_THROW(table.pinCurrentAt(2, 0.0, 0.0), Error);
}

TEST(LeakageLibraryTest, InsertValidatesVectorCount) {
  LeakageLibrary library;
  std::vector<VectorTable> tables(2, makeTable());
  EXPECT_NO_THROW(library.insert(gates::GateKind::kInv, tables));
  EXPECT_THROW(library.insert(gates::GateKind::kNand2, tables), Error);
  EXPECT_TRUE(library.has(gates::GateKind::kInv));
  EXPECT_FALSE(library.has(gates::GateKind::kNand2));
  EXPECT_THROW(library.tables(gates::GateKind::kNand2), Error);
  EXPECT_THROW(library.table(gates::GateKind::kInv, 5), Error);
}

TEST(LeakageLibraryTest, SerializationRoundTrips) {
  LeakageLibrary::Meta meta;
  meta.technology_name = "testtech";
  meta.vdd = 0.9;
  meta.temperature_k = 330.0;
  LeakageLibrary library(meta);
  VectorTable t0 = makeTable();
  t0.pin_current_grid = {Grid2D(2, 2), Grid2D(2, 2)};
  t0.pin_current_grid[0].at(1, 1) = 7e-8;
  library.insert(gates::GateKind::kInv, {t0, makeTable()});

  std::stringstream stream;
  library.serialize(stream);
  const LeakageLibrary loaded = LeakageLibrary::deserialize(stream);
  EXPECT_EQ(loaded.meta().technology_name, "testtech");
  EXPECT_DOUBLE_EQ(loaded.meta().vdd, 0.9);
  EXPECT_DOUBLE_EQ(loaded.meta().temperature_k, 330.0);
  ASSERT_TRUE(loaded.has(gates::GateKind::kInv));
  const VectorTable& read = loaded.table(gates::GateKind::kInv, 0);
  EXPECT_DOUBLE_EQ(read.nominal.subthreshold, 1e-7);
  EXPECT_DOUBLE_EQ(read.isolated_nominal.gate, 1.9e-7);
  EXPECT_DOUBLE_EQ(read.pin_current[1], -4e-8);
  EXPECT_DOUBLE_EQ(read.pin_current_grid[0].at(1, 1), 7e-8);
  // Interpolation behaviour identical after the round trip.
  EXPECT_DOUBLE_EQ(read.lookup(0.5e-6, 1e-6).subthreshold,
                   t0.lookup(0.5e-6, 1e-6).subthreshold);
}

TEST(LeakageLibraryTest, DeserializeRejectsGarbage) {
  std::stringstream bad("not-a-library 9");
  EXPECT_THROW(LeakageLibrary::deserialize(bad), Error);
}

TEST(LeakageLibraryTest, FileRoundTrip) {
  LeakageLibrary library;
  library.insert(gates::GateKind::kInv, {makeTable(), makeTable()});
  const std::string path = ::testing::TempDir() + "/lib_test.nlib";
  library.saveFile(path);
  const LeakageLibrary loaded = LeakageLibrary::loadFile(path);
  EXPECT_TRUE(loaded.has(gates::GateKind::kInv));
  EXPECT_THROW(LeakageLibrary::loadFile("/nonexistent/x.nlib"), Error);
}

}  // namespace
}  // namespace nanoleak::core
