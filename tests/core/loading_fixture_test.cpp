#include "core/loading_fixture.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace nanoleak::core {
namespace {

TEST(LoadingFixtureTest, RejectsBadConstruction) {
  EXPECT_THROW(
      LoadingFixture(gates::GateKind::kNand2, {true},
                     device::defaultTechnology()),
      Error);
  EXPECT_THROW(
      LoadingFixture(gates::GateKind::kDff, {true},
                     device::defaultTechnology()),
      Error);
}

TEST(LoadingFixtureTest, NominalSolveProducesPinCurrents) {
  LoadingFixture fx(gates::GateKind::kInv, {false},
                    device::defaultTechnology());
  const FixtureResult r = fx.solve();
  ASSERT_EQ(r.pin_currents_into_net.size(), 1u);
  // Pin at '0' injects current INTO the net (raises it) - paper section 4.
  EXPECT_GT(r.pin_currents_into_net[0], 0.0);
  EXPECT_GT(toNanoAmps(r.pin_currents_into_net[0]), 50.0);

  LoadingFixture fx1(gates::GateKind::kInv, {true},
                     device::defaultTechnology());
  const FixtureResult r1 = fx1.solve();
  // Pin at '1' draws current OUT of the net (droops it from VDD).
  EXPECT_LT(r1.pin_currents_into_net[0], 0.0);
}

TEST(LoadingFixtureTest, PinVoltagesNearLogicLevels) {
  LoadingFixture fx(gates::GateKind::kNand2, {false, true},
                    device::defaultTechnology());
  const FixtureResult r = fx.solve();
  EXPECT_LT(r.pin_voltages[0], 0.05);
  EXPECT_GT(r.pin_voltages[1], 0.95);
  EXPECT_GT(r.output_voltage, 0.95);  // NAND(0,1) = 1
}

TEST(LoadingFixtureTest, InputLoadingRaisesLowPin) {
  LoadingFixture fx(gates::GateKind::kInv, {false},
                    device::defaultTechnology());
  const double v0 = fx.solve().pin_voltages[0];
  fx.setInputLoading(nA(3000.0));
  const double v1 = fx.solve().pin_voltages[0];
  EXPECT_GT(v1, v0 + 1e-3);  // at least a millivolt of rise
  EXPECT_LT(v1, v0 + 0.1);   // but still near ground
}

TEST(LoadingFixtureTest, OutputLoadingDroopsHighOutput) {
  LoadingFixture fx(gates::GateKind::kInv, {false},
                    device::defaultTechnology());
  const double v0 = fx.solve().output_voltage;
  fx.setOutputLoading(-nA(3000.0));  // fanout pins at '1' draw current
  const double v1 = fx.solve().output_voltage;
  EXPECT_LT(v1, v0 - 1e-3);
}

TEST(LoadingFixtureTest, PinLoadingIndexChecked) {
  LoadingFixture fx(gates::GateKind::kInv, {false},
                    device::defaultTechnology());
  EXPECT_THROW(fx.setPinLoading(1, 0.0), Error);
  EXPECT_THROW(fx.setPinLoading(-1, 0.0), Error);
  EXPECT_NO_THROW(fx.setPinLoading(0, nA(100.0)));
}

TEST(LoadingFixtureTest, LeakageExcludesDrivers) {
  // The fixture's reported leakage is the gate under test only: an INV
  // fixture must report far less than the whole netlist leaks.
  LoadingFixture fx(gates::GateKind::kInv, {false},
                    device::defaultTechnology());
  const FixtureResult r = fx.solve();
  // Compare with an isolated inverter: same order of magnitude.
  EXPECT_GT(toNanoAmps(r.leakage.total()), 200.0);
  EXPECT_LT(toNanoAmps(r.leakage.total()), 3000.0);
}

TEST(LoadingFixtureTest, SolveIsRepeatable) {
  LoadingFixture fx(gates::GateKind::kNand2, {true, false},
                    device::defaultTechnology());
  fx.setInputLoading(nA(500.0));
  fx.setOutputLoading(nA(250.0));
  const FixtureResult a = fx.solve();
  const FixtureResult b = fx.solve();
  EXPECT_DOUBLE_EQ(a.leakage.total(), b.leakage.total());
  EXPECT_DOUBLE_EQ(a.output_voltage, b.output_voltage);
}

}  // namespace
}  // namespace nanoleak::core
