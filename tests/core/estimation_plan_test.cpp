// Equivalence contract of the compile-once / execute-many split: the
// EstimationPlan + EstimationWorkspace paths (full and incremental delta)
// are bit-identical to the legacy per-call LeakageEstimator::estimate on
// every LeakageBreakdown field of every gate, across randomized circuits,
// patterns, single-bit-flip walks, propagation iteration counts, and
// DFF-bearing netlists.
#include "core/estimation_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/generators.h"
#include "util/error.h"
#include "util/rng.h"

namespace nanoleak::core {
namespace {

const LeakageLibrary& sharedLibrary() {
  static const LeakageLibrary library = [] {
    CharacterizationOptions options;
    options.kinds = generatorGateKinds();
    options.loading_grid = {0.0, 0.5e-6, 1.0e-6, 2.0e-6, 3.0e-6, 6.0e-6};
    return Characterizer(device::defaultTechnology(), options).characterize();
  }();
  return library;
}

void expectExactlyEqual(const EstimateResult& expected,
                        const EstimateResult& actual,
                        const std::string& context) {
  EXPECT_EQ(expected.total.subthreshold, actual.total.subthreshold)
      << context;
  EXPECT_EQ(expected.total.gate, actual.total.gate) << context;
  EXPECT_EQ(expected.total.btbt, actual.total.btbt) << context;
  ASSERT_EQ(expected.per_gate.size(), actual.per_gate.size()) << context;
  for (std::size_t g = 0; g < expected.per_gate.size(); ++g) {
    const GateEstimate& e = expected.per_gate[g];
    const GateEstimate& a = actual.per_gate[g];
    ASSERT_EQ(e.leakage.subthreshold, a.leakage.subthreshold)
        << context << " gate " << g;
    ASSERT_EQ(e.leakage.gate, a.leakage.gate) << context << " gate " << g;
    ASSERT_EQ(e.leakage.btbt, a.leakage.btbt) << context << " gate " << g;
    ASSERT_EQ(e.il, a.il) << context << " gate " << g;
    ASSERT_EQ(e.ol, a.ol) << context << " gate " << g;
  }
}

/// Random patterns (full path on a fresh and a reused workspace) followed
/// by a single-bit-flip walk (delta path), all checked against the legacy
/// estimator.
void runEquivalence(const logic::LogicNetlist& netlist,
                    const EstimatorOptions& options,
                    const std::string& context, std::uint64_t seed,
                    int random_patterns = 6, int flip_steps = 24) {
  const LeakageEstimator legacy(netlist, sharedLibrary(), options);
  const EstimationPlan plan(netlist, sharedLibrary(), options);
  EstimationWorkspace ws(plan);
  EstimateResult plan_result;

  Rng rng(seed);
  for (int i = 0; i < random_patterns; ++i) {
    const std::vector<bool> pattern =
        logic::randomPattern(plan.sourceCount(), rng);
    const EstimateResult expected = legacy.estimate(pattern);

    // Full path on a cold workspace.
    EstimationWorkspace cold(plan);
    expectExactlyEqual(expected, plan.estimate(pattern, cold),
                       context + " full/cold pattern " + std::to_string(i));
    // Full path on the reused workspace.
    plan.estimate(pattern, ws, plan_result);
    expectExactlyEqual(expected, plan_result,
                       context + " full/warm pattern " + std::to_string(i));
    // Delta path fed an arbitrary previous state.
    plan.estimateDelta(pattern, ws, plan_result);
    expectExactlyEqual(expected, plan_result,
                       context + " delta/same pattern " + std::to_string(i));
  }

  // Single-bit-flip walk: the delta path's home turf.
  std::vector<bool> pattern = logic::randomPattern(plan.sourceCount(), rng);
  plan.estimate(pattern, ws, plan_result);
  for (int step = 0; step < flip_steps; ++step) {
    const std::size_t bit =
        static_cast<std::size_t>(rng.uniformInt(plan.sourceCount()));
    pattern[bit] = !pattern[bit];
    plan.estimateDelta(pattern, ws, plan_result);
    expectExactlyEqual(legacy.estimate(pattern), plan_result,
                       context + " delta step " + std::to_string(step));
  }

  // Many-bit jump (exercises the dirty-fraction fallback).
  for (std::size_t bit = 0; bit < pattern.size(); bit += 2) {
    pattern[bit] = !pattern[bit];
  }
  plan.estimateDelta(pattern, ws, plan_result);
  expectExactlyEqual(legacy.estimate(pattern), plan_result,
                     context + " delta jump");
}

TEST(EstimationPlanTest, MatchesLegacyOnRandomCircuits) {
  struct Case {
    std::string name;
    logic::LogicNetlist netlist;
  };
  std::vector<Case> cases;
  cases.push_back({"c17", logic::c17()});
  cases.push_back({"fanout_star6", logic::fanoutStar(6)});
  cases.push_back({"mult44", logic::arrayMultiplier(4)});
  cases.push_back(
      {"s838_like", logic::synthesizeIscasLike(logic::iscasSpec("s838"),
                                               20050307)});

  std::uint64_t seed = 7;
  for (const Case& c : cases) {
    for (int iterations : {1, 3}) {
      EstimatorOptions options;
      options.propagation_iterations = iterations;
      runEquivalence(c.netlist, options,
                     c.name + " iters=" + std::to_string(iterations),
                     seed++);
    }
    EstimatorOptions no_loading;
    no_loading.with_loading = false;
    runEquivalence(c.netlist, no_loading, c.name + " no-loading", seed++);
  }
}

TEST(EstimationPlanTest, MatchesLegacyOnDffBoundary) {
  // Hand-built DFF netlist: gate -> DFF -> gate, so both the pseudo-PO
  // loading on the D net and the pseudo-PI source on the Q net are hit.
  logic::LogicNetlist nl;
  const logic::NetId in = nl.addNet("in");
  nl.markPrimaryInput(in);
  const logic::NetId mid = nl.addNet("mid");
  const logic::NetId q = nl.addNet("q");
  const logic::NetId out = nl.addNet("out");
  nl.addGate(gates::GateKind::kInv, {in}, mid);
  nl.addDff(mid, q);
  nl.addGate(gates::GateKind::kInv, {q}, out);
  nl.markPrimaryOutput(out);

  for (int iterations : {1, 3}) {
    EstimatorOptions options;
    options.propagation_iterations = iterations;
    runEquivalence(nl, options,
                   "dff_pair iters=" + std::to_string(iterations), 99,
                   /*random_patterns=*/4, /*flip_steps=*/8);
  }
}

TEST(EstimationPlanTest, RejectsWrongSourceCount) {
  const logic::LogicNetlist nl = logic::c17();  // 5 sources
  const EstimationPlan plan(nl, sharedLibrary());
  EstimationWorkspace ws(plan);
  try {
    plan.estimate(std::vector<bool>(3, false), ws);
    FAIL() << "expected nanoleak::Error";
  } catch (const Error& error) {
    // The message names the expected and the offending count.
    EXPECT_NE(std::string(error.what()).find("5"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("3"), std::string::npos);
  }
  EXPECT_THROW(plan.estimateDelta(std::vector<bool>(6, false), ws), Error);
}

TEST(EstimationPlanTest, RejectsForeignWorkspace) {
  const logic::LogicNetlist a = logic::c17();
  const logic::LogicNetlist b = logic::fanoutStar(3);
  const EstimationPlan plan_a(a, sharedLibrary());
  const EstimationPlan plan_b(b, sharedLibrary());
  EstimationWorkspace ws_b(plan_b);
  EXPECT_THROW(plan_a.estimate(std::vector<bool>(5, false), ws_b), Error);
}

TEST(EstimationPlanTest, InvalidateForcesFullReevaluation) {
  const logic::LogicNetlist nl = logic::arrayMultiplier(4);
  const LeakageEstimator legacy(nl, sharedLibrary());
  const EstimationPlan plan(nl, sharedLibrary());
  EstimationWorkspace ws(plan);

  std::vector<bool> pattern(plan.sourceCount(), false);
  plan.estimate(pattern, ws);
  EXPECT_TRUE(ws.warm());
  ws.invalidate();
  EXPECT_FALSE(ws.warm());
  pattern[0] = true;
  expectExactlyEqual(legacy.estimate(pattern),
                     plan.estimateDelta(pattern, ws), "post-invalidate");
  EXPECT_TRUE(ws.warm());
}

}  // namespace
}  // namespace nanoleak::core
