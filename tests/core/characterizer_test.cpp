#include "core/characterizer.h"

#include <gtest/gtest.h>

#include "core/loading_fixture.h"
#include "util/error.h"
#include "util/units.h"

namespace nanoleak::core {
namespace {

CharacterizationOptions smallGrid(std::vector<gates::GateKind> kinds) {
  CharacterizationOptions options;
  options.kinds = std::move(kinds);
  options.loading_grid = {0.0, 1.0e-6, 3.0e-6};
  return options;
}

TEST(CharacterizerTest, RejectsBadGrid) {
  CharacterizationOptions options;
  options.loading_grid = {1e-6, 2e-6};  // missing 0
  EXPECT_THROW(Characterizer(device::defaultTechnology(), options), Error);
  options.loading_grid = {0.0, 2e-6, 1e-6};  // not increasing
  EXPECT_THROW(Characterizer(device::defaultTechnology(), options), Error);
}

TEST(CharacterizerTest, InverterTablesHaveBothVectors) {
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kInv}));
  const LeakageLibrary lib = chr.characterize();
  ASSERT_TRUE(lib.has(gates::GateKind::kInv));
  const auto& tables = lib.tables(gates::GateKind::kInv);
  ASSERT_EQ(tables.size(), 2u);
  for (const VectorTable& t : tables) {
    EXPECT_GT(t.nominal.total(), 0.0);
    EXPECT_GT(t.isolated_nominal.total(), 0.0);
    EXPECT_EQ(t.pin_current.size(), 1u);
    EXPECT_EQ(t.subthreshold.rows(), 3u);
    EXPECT_EQ(t.subthreshold.cols(), 3u);
    EXPECT_EQ(t.pin_current_grid.size(), 1u);
  }
}

TEST(CharacterizerTest, ZeroLoadingGridPointEqualsNominal) {
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kInv}));
  const auto tables = chr.characterizeKind(gates::GateKind::kInv);
  for (const VectorTable& t : tables) {
    EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0).total(), t.nominal.total());
  }
}

TEST(CharacterizerTest, SubthresholdGrowsAlongIlAxis) {
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kInv}));
  const auto tables = chr.characterizeKind(gates::GateKind::kInv);
  for (const VectorTable& t : tables) {
    // Row index = IL; subthreshold rises with input loading.
    EXPECT_GT(t.subthreshold.at(2, 0), t.subthreshold.at(0, 0));
    // Column index = OL; total falls with output loading.
    const double total_ol0 =
        t.subthreshold.at(0, 0) + t.gate.at(0, 0) + t.btbt.at(0, 0);
    const double total_ol2 =
        t.subthreshold.at(0, 2) + t.gate.at(0, 2) + t.btbt.at(0, 2);
    EXPECT_LT(total_ol2, total_ol0);
  }
}

TEST(CharacterizerTest, IsolatedNominalDiffersFromFixtureNominal) {
  // Real drivers droop under the gate's own currents, so the fixture
  // nominal must not equal the ideal-rail value.
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kInv}));
  const auto tables = chr.characterizeKind(gates::GateKind::kInv);
  for (const VectorTable& t : tables) {
    EXPECT_NE(t.nominal.total(), t.isolated_nominal.total());
    // ... but within ~25 % (they describe the same gate).
    EXPECT_NEAR(t.nominal.total(), t.isolated_nominal.total(),
                0.25 * t.isolated_nominal.total());
  }
}

TEST(CharacterizerTest, PinCurrentSignsFollowPinLevels) {
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kNand2}));
  const auto tables = chr.characterizeKind(gates::GateKind::kNand2);
  ASSERT_EQ(tables.size(), 4u);
  // Vector index bit k = pin k level. Pin at '0' injects (+), '1' draws (-).
  EXPECT_GT(tables[0].pin_current[0], 0.0);  // 00
  EXPECT_GT(tables[0].pin_current[1], 0.0);
  EXPECT_LT(tables[1].pin_current[0], 0.0);  // pin0=1
  EXPECT_GT(tables[1].pin_current[1], 0.0);
  EXPECT_LT(tables[3].pin_current[0], 0.0);  // 11
  EXPECT_LT(tables[3].pin_current[1], 0.0);
}

TEST(CharacterizerTest, FullLibraryCoversGeneratorKinds) {
  CharacterizationOptions options = smallGrid(generatorGateKinds());
  options.store_pin_current_grids = false;
  const Characterizer chr(device::defaultTechnology(), options);
  const LeakageLibrary lib = chr.characterize();
  for (gates::GateKind kind : generatorGateKinds()) {
    EXPECT_TRUE(lib.has(kind)) << gates::toString(kind);
  }
  EXPECT_EQ(lib.meta().vdd, device::defaultTechnology().vdd);
  // store_pin_current_grids=false leaves grids empty but keeps nominal
  // pin currents.
  const VectorTable& t = lib.table(gates::GateKind::kInv, 0);
  EXPECT_TRUE(t.pin_current_grid.empty());
  EXPECT_EQ(t.pin_current.size(), 1u);
}

std::vector<VectorTable> tablesFor(
    CharacterizationOptions::SolverPath path, gates::GateKind kind) {
  CharacterizationOptions options = smallGrid({kind});
  options.solver_path = path;
  return Characterizer(device::defaultTechnology(), options)
      .characterizeKind(kind);
}

double maxRelDiff(const Grid2D& a, const Grid2D& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double denom = std::max(std::abs(a.at(i, j)), 1e-30);
      worst = std::max(worst, std::abs(a.at(i, j) - b.at(i, j)) / denom);
    }
  }
  return worst;
}

TEST(CharacterizerTest, CompiledPathBitIdenticalToLegacy) {
  using SolverPath = CharacterizationOptions::SolverPath;
  for (gates::GateKind kind :
       {gates::GateKind::kInv, gates::GateKind::kNand2}) {
    const auto legacy = tablesFor(SolverPath::kLegacy, kind);
    const auto compiled = tablesFor(SolverPath::kCompiled, kind);
    ASSERT_EQ(legacy.size(), compiled.size());
    for (std::size_t v = 0; v < legacy.size(); ++v) {
      EXPECT_EQ(legacy[v].subthreshold.values(),
                compiled[v].subthreshold.values());
      EXPECT_EQ(legacy[v].gate.values(), compiled[v].gate.values());
      EXPECT_EQ(legacy[v].btbt.values(), compiled[v].btbt.values());
      EXPECT_EQ(legacy[v].nominal.total(), compiled[v].nominal.total());
      for (std::size_t pin = 0; pin < legacy[v].pin_current_grid.size();
           ++pin) {
        EXPECT_EQ(legacy[v].pin_current_grid[pin].values(),
                  compiled[v].pin_current_grid[pin].values());
      }
    }
  }
}

TEST(CharacterizerTest, WarmStartPathAgreesWithLegacyWithinTolerance) {
  using SolverPath = CharacterizationOptions::SolverPath;
  const auto legacy = tablesFor(SolverPath::kLegacy, gates::GateKind::kNand2);
  const auto warm =
      tablesFor(SolverPath::kCompiledWarmStart, gates::GateKind::kNand2);
  ASSERT_EQ(legacy.size(), warm.size());
  for (std::size_t v = 0; v < legacy.size(); ++v) {
    EXPECT_LT(maxRelDiff(legacy[v].subthreshold, warm[v].subthreshold), 1e-6);
    EXPECT_LT(maxRelDiff(legacy[v].gate, warm[v].gate), 1e-6);
    EXPECT_LT(maxRelDiff(legacy[v].btbt, warm[v].btbt), 1e-6);
  }
}

// The SIMD lane-parallel path (the default) agrees with the scan-order
// warm-start reference on every cell of every table. The 5-column grid
// exercises both a full lane group and a partial trailing one on 4-lane
// backends; on the scalar backend every lane takes the bit-exact path.
TEST(CharacterizerTest, BatchedPathMatchesWarmStartWithinTolerance) {
  using SolverPath = CharacterizationOptions::SolverPath;
  CharacterizationOptions options;
  options.kinds = {gates::GateKind::kNand2};
  options.loading_grid = {0.0, 0.5e-6, 1.0e-6, 2.0e-6, 3.0e-6};
  EXPECT_EQ(options.solver_path, SolverPath::kBatched);  // the default
  const auto batched = Characterizer(device::defaultTechnology(), options)
                           .characterizeKind(gates::GateKind::kNand2);
  options.solver_path = SolverPath::kCompiledWarmStart;
  const auto warm = Characterizer(device::defaultTechnology(), options)
                        .characterizeKind(gates::GateKind::kNand2);
  ASSERT_EQ(batched.size(), warm.size());
  for (std::size_t v = 0; v < warm.size(); ++v) {
    EXPECT_LT(maxRelDiff(warm[v].subthreshold, batched[v].subthreshold),
              1e-6);
    EXPECT_LT(maxRelDiff(warm[v].gate, batched[v].gate), 1e-6);
    EXPECT_LT(maxRelDiff(warm[v].btbt, batched[v].btbt), 1e-6);
    ASSERT_EQ(batched[v].pin_current_grid.size(),
              warm[v].pin_current_grid.size());
    for (std::size_t pin = 0; pin < warm[v].pin_current_grid.size(); ++pin) {
      EXPECT_LT(maxRelDiff(warm[v].pin_current_grid[pin],
                           batched[v].pin_current_grid[pin]),
                1e-6);
    }
    EXPECT_NEAR(batched[v].nominal.total(), warm[v].nominal.total(),
                1e-6 * warm[v].nominal.total());
    // The isolated reference never goes through a solver.
    EXPECT_EQ(batched[v].isolated_nominal.total(),
              warm[v].isolated_nominal.total());
  }
}

TEST(CharacterizerTest, PinCurrentMagnitudesAreHundredsOfNanoamps) {
  // The paper's 0-3000 nA loading sweeps presume pin currents of this
  // order (a few fanouts reach the microamp range).
  const Characterizer chr(device::defaultTechnology(),
                          smallGrid({gates::GateKind::kInv}));
  const auto tables = chr.characterizeKind(gates::GateKind::kInv);
  for (const VectorTable& t : tables) {
    EXPECT_GT(std::abs(toNanoAmps(t.pin_current[0])), 100.0);
    EXPECT_LT(std::abs(toNanoAmps(t.pin_current[0])), 2000.0);
  }
}

}  // namespace
}  // namespace nanoleak::core
