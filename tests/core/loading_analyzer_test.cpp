// The paper's Figs. 5-8 claims as assertions (see DESIGN.md section 4
// "shape targets").
#include "core/loading_analyzer.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace nanoleak::core {
namespace {

using gates::GateKind;

TEST(LoadingAnalyzerTest, Fig5aInputLoadingSignsInput0) {
  LoadingAnalyzer an(GateKind::kInv, {false}, device::defaultTechnology());
  const LoadingEffect e = an.inputLoadingEffect(nA(3000.0));
  EXPECT_GT(e.subthreshold_pct, 3.0);   // subthreshold rises strongly
  EXPECT_LT(e.gate_pct, 0.0);           // gate tunneling dips slightly
  EXPECT_GT(e.gate_pct, -6.0);
  EXPECT_NEAR(e.btbt_pct, 0.0, 1.0);    // BTBT ~ flat under input loading
  EXPECT_GT(e.total_pct, 2.0);          // total rises
}

TEST(LoadingAnalyzerTest, Fig5InputLoadingStrongerAtInput0) {
  LoadingAnalyzer a0(GateKind::kInv, {false}, device::defaultTechnology());
  LoadingAnalyzer a1(GateKind::kInv, {true}, device::defaultTechnology());
  const double e0 = a0.inputLoadingEffect(nA(3000.0)).total_pct;
  const double e1 = a1.inputLoadingEffect(nA(3000.0)).total_pct;
  EXPECT_GT(e0, e1);      // paper: ~12 % vs ~4.5 %
  EXPECT_GT(e0, 1.3 * e1);
}

TEST(LoadingAnalyzerTest, Fig5OutputLoadingReducesAllComponents) {
  for (bool input : {false, true}) {
    LoadingAnalyzer an(GateKind::kInv, {input},
                       device::defaultTechnology());
    const LoadingEffect e = an.outputLoadingEffect(nA(3000.0));
    EXPECT_LT(e.subthreshold_pct, 0.0) << "input=" << input;
    EXPECT_LT(e.gate_pct, 0.0) << "input=" << input;
    EXPECT_LT(e.btbt_pct, 0.0) << "input=" << input;
    EXPECT_LT(e.total_pct, 0.0) << "input=" << input;
  }
}

TEST(LoadingAnalyzerTest, Fig5OutputLoadingStrongerAtOutput0) {
  // Output '0' = input '1' for an inverter. Paper: ~-4.5 % vs ~-1.5 %.
  LoadingAnalyzer out1(GateKind::kInv, {false}, device::defaultTechnology());
  LoadingAnalyzer out0(GateKind::kInv, {true}, device::defaultTechnology());
  const double e1 = out1.outputLoadingEffect(nA(3000.0)).total_pct;
  const double e0 = out0.outputLoadingEffect(nA(3000.0)).total_pct;
  EXPECT_LT(e0, e1);  // more negative
}

TEST(LoadingAnalyzerTest, BtbtIsTheMostOutputSensitiveComponent) {
  LoadingAnalyzer an(GateKind::kInv, {false}, device::defaultTechnology());
  const LoadingEffect e = an.outputLoadingEffect(nA(3000.0));
  EXPECT_LT(e.btbt_pct, e.subthreshold_pct);
  EXPECT_LT(e.btbt_pct, e.gate_pct);
}

TEST(LoadingAnalyzerTest, EffectsGrowWithLoadingCurrent) {
  LoadingAnalyzer an(GateKind::kInv, {false}, device::defaultTechnology());
  double prev = 0.0;
  for (double il : {500.0, 1000.0, 2000.0, 3000.0}) {
    const double e = an.inputLoadingEffect(nA(il)).total_pct;
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(LoadingAnalyzerTest, Fig6CombinedEffectIsMonotoneInBothAxes) {
  LoadingAnalyzer an(GateKind::kInv, {false}, device::defaultTechnology());
  const double base = an.combinedLoadingEffect(nA(1000.0), nA(1000.0)).total_pct;
  const double more_in =
      an.combinedLoadingEffect(nA(2000.0), nA(1000.0)).total_pct;
  const double more_out =
      an.combinedLoadingEffect(nA(1000.0), nA(2000.0)).total_pct;
  EXPECT_GT(more_in, base);   // input loading raises leakage
  EXPECT_LT(more_out, base);  // output loading lowers it
}

TEST(LoadingAnalyzerTest, Fig7NandInputLoadingStrongerWithAZeroInput) {
  // Vectors with at least one '0' show bigger input loading than "11".
  auto total_at = [&](std::vector<bool> vec) {
    LoadingAnalyzer an(GateKind::kNand2, std::move(vec),
                       device::defaultTechnology());
    return an.inputLoadingEffect(nA(3000.0)).total_pct;
  };
  const double e01 = total_at({true, false});
  const double e10 = total_at({false, true});
  const double e11 = total_at({true, true});
  EXPECT_GT(e01, e11);
  EXPECT_GT(e10, e11);
}

TEST(LoadingAnalyzerTest, Fig7StackingWeakensInputLoadingAt00) {
  // The paper's Fig. 7 sweeps the loading on ONE pin at a time. With "00"
  // both series NMOS are off, so loading one gate leaves the current
  // limited by the other device (stacking); with "01" the loaded pin is
  // the single blocking device and responds fully.
  auto sub_pin = [&](std::vector<bool> vec, int pin) {
    LoadingAnalyzer an(GateKind::kNand2, std::move(vec),
                       device::defaultTechnology());
    return an.pinLoadingEffect(pin, nA(3000.0)).subthreshold_pct;
  };
  const double e00 = sub_pin({false, false}, 1);
  const double e01 = sub_pin({true, false}, 1);  // pin1 is the '0' input
  EXPECT_LT(e00, e01);
}

TEST(LoadingAnalyzerTest, Fig8InputLoadingStrongestForSubDominatedDevice) {
  auto ldin = [&](const device::Technology& tech) {
    LoadingAnalyzer an(GateKind::kInv, {false}, tech);
    return an.inputLoadingEffect(nA(3000.0)).total_pct;
  };
  const double s = ldin(device::defaultTechnology());
  const double g = ldin(device::gateDominatedTechnology());
  const double jn = ldin(device::btbtDominatedTechnology());
  EXPECT_GT(s, g);
  EXPECT_GT(s, jn);
}

TEST(LoadingAnalyzerTest, Fig8OutputLoadingStrongestForBtbtDevice) {
  auto ldout = [&](const device::Technology& tech) {
    LoadingAnalyzer an(GateKind::kInv, {true}, tech);
    return an.outputLoadingEffect(nA(3000.0)).total_pct;
  };
  const double s = ldout(device::defaultTechnology());
  const double g = ldout(device::gateDominatedTechnology());
  const double jn = ldout(device::btbtDominatedTechnology());
  EXPECT_LT(jn, s);  // most negative
  EXPECT_LT(jn, g);
}

TEST(LoadingAnalyzerTest, Fig8GateDominatedDeviceLeastAffected) {
  auto ldall = [&](const device::Technology& tech) {
    LoadingAnalyzer an(GateKind::kInv, {false}, tech);
    return std::abs(an.combinedLoadingEffect(nA(2000.0), nA(2000.0)).total_pct);
  };
  const double s = ldall(device::defaultTechnology());
  const double g = ldall(device::gateDominatedTechnology());
  EXPECT_LT(g, s);
}

TEST(LoadingAnalyzerTest, PinLoadingMatchesAggregateForOnePin) {
  LoadingAnalyzer an(GateKind::kInv, {false}, device::defaultTechnology());
  const double via_pin = an.pinLoadingEffect(0, nA(1500.0)).total_pct;
  const double via_agg = an.inputLoadingEffect(nA(1500.0)).total_pct;
  EXPECT_NEAR(via_pin, via_agg, 1e-6);
}

}  // namespace
}  // namespace nanoleak::core
