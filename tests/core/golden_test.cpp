#include "core/golden.h"

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/estimator.h"
#include "logic/generators.h"
#include "logic/logic_sim.h"
#include "util/rng.h"

namespace nanoleak::core {
namespace {

TEST(GoldenTest, ChainTotalsArePerGateSums) {
  const logic::LogicNetlist nl = logic::inverterChain(6);
  const GoldenResult r =
      goldenLeakage(nl, device::defaultTechnology(), {true});
  ASSERT_EQ(r.per_gate.size(), 6u);
  device::LeakageBreakdown sum;
  for (const auto& g : r.per_gate) {
    sum += g;
  }
  EXPECT_NEAR(sum.total(), r.total.total(), 1e-15);
  EXPECT_GT(r.total.total(), 0.0);
}

TEST(GoldenTest, SolverFirstSolveBitIdenticalToGoldenLeakage) {
  const logic::LogicNetlist nl = logic::rippleCarryAdder(4);
  const device::Technology tech = device::defaultTechnology();
  Rng rng(5);
  const logic::LogicSimulator sim(nl);
  const auto vec = logic::randomPattern(sim.sourceCount(), rng);

  GoldenSolver solver(nl, tech);
  const GoldenResult fresh = goldenLeakage(nl, tech, vec);
  const GoldenResult compiled = solver.solve(vec);
  EXPECT_EQ(fresh.total.subthreshold, compiled.total.subthreshold);
  EXPECT_EQ(fresh.total.gate, compiled.total.gate);
  EXPECT_EQ(fresh.total.btbt, compiled.total.btbt);
  EXPECT_EQ(fresh.sweeps, compiled.sweeps);
  EXPECT_EQ(fresh.node_solves, compiled.node_solves);
}

TEST(GoldenTest, SolverWarmResolveMatchesFreshSolves) {
  const logic::LogicNetlist nl = logic::c17();
  const device::Technology tech = device::defaultTechnology();
  Rng rng(17);
  const logic::LogicSimulator sim(nl);

  GoldenSolver solver(nl, tech);
  for (int rep = 0; rep < 6; ++rep) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const GoldenResult warm = solver.solve(vec);
    const GoldenResult fresh = goldenLeakage(nl, tech, vec);
    EXPECT_NEAR(warm.total.total(), fresh.total.total(),
                1e-6 * fresh.total.total())
        << "rep " << rep;
    ASSERT_EQ(warm.per_gate.size(), fresh.per_gate.size());
    for (std::size_t g = 0; g < fresh.per_gate.size(); ++g) {
      EXPECT_NEAR(warm.per_gate[g].total(), fresh.per_gate[g].total(),
                  1e-6 * fresh.per_gate[g].total() + 1e-18);
    }
  }
}

TEST(GoldenTest, IsolatedSumIsVectorDependent) {
  const logic::LogicNetlist nl = logic::c17();
  const device::Technology tech = device::defaultTechnology();
  const double all0 =
      isolatedSumLeakage(nl, tech, {false, false, false, false, false})
          .total();
  const double all1 =
      isolatedSumLeakage(nl, tech, {true, true, true, true, true}).total();
  EXPECT_NE(all0, all1);
  EXPECT_GT(all0, 0.0);
}

TEST(GoldenTest, LoadingRaisesCircuitLeakageVsIsolated) {
  // The paper's central circuit-level observation (Fig. 12b): the full
  // solve exceeds the traditional isolated accumulation by a few percent.
  const logic::LogicNetlist nl = logic::arrayMultiplier(5);
  const device::Technology tech = device::defaultTechnology();
  Rng rng(21);
  const logic::LogicSimulator sim(nl);
  const auto vec = logic::randomPattern(sim.sourceCount(), rng);
  const GoldenResult golden = goldenLeakage(nl, tech, vec);
  const double isolated = isolatedSumLeakage(nl, tech, vec).total();
  const double delta_pct =
      100.0 * (golden.total.total() - isolated) / isolated;
  EXPECT_GT(delta_pct, 0.5);
  EXPECT_LT(delta_pct, 15.0);
}

TEST(GoldenTest, EstimatorTracksGoldenWithinTolerance) {
  // Fig. 12a: the estimator must match the full solve closely.
  const logic::LogicNetlist nl = logic::arrayMultiplier(5);
  const device::Technology tech = device::defaultTechnology();
  CharacterizationOptions options;
  options.kinds = generatorGateKinds();
  const LeakageLibrary lib = Characterizer(tech, options).characterize();
  const LeakageEstimator est(nl, lib);
  Rng rng(22);
  const logic::LogicSimulator sim(nl);
  for (int trial = 0; trial < 3; ++trial) {
    const auto vec = logic::randomPattern(sim.sourceCount(), rng);
    const GoldenResult golden = goldenLeakage(nl, tech, vec);
    const EstimateResult estimate = est.estimate(vec);
    const double err = std::abs(estimate.total.total() -
                                golden.total.total()) /
                       golden.total.total();
    EXPECT_LT(err, 0.04) << "trial " << trial;
  }
}

TEST(GoldenTest, VariationShiftsGoldenLeakage) {
  const logic::LogicNetlist nl = logic::inverterChain(4);
  const device::Technology tech = device::defaultTechnology();
  const gates::VariationProvider leaky = [] {
    device::DeviceVariation v;
    v.delta_vth = -0.05;
    return v;
  };
  const double nominal =
      goldenLeakage(nl, tech, {false}).total.total();
  const double shifted =
      goldenLeakage(nl, tech, {false}, leaky).total.total();
  EXPECT_GT(shifted, 1.5 * nominal);
}

}  // namespace
}  // namespace nanoleak::core
