#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "logic/generators.h"
#include "util/error.h"

namespace nanoleak::core {
namespace {

const LeakageLibrary& sharedLibrary() {
  static const LeakageLibrary library = [] {
    CharacterizationOptions options;
    options.kinds = generatorGateKinds();
    options.loading_grid = {0.0, 0.5e-6, 1.0e-6, 2.0e-6, 3.0e-6, 6.0e-6};
    return Characterizer(device::defaultTechnology(), options).characterize();
  }();
  return library;
}

TEST(EstimatorTest, RejectsMissingKinds) {
  LeakageLibrary empty;
  const logic::LogicNetlist nl = logic::c17();
  EXPECT_THROW(LeakageEstimator(nl, empty), Error);
}

TEST(EstimatorTest, RejectsBadOptions) {
  const logic::LogicNetlist nl = logic::c17();
  EstimatorOptions options;
  options.propagation_iterations = 0;
  EXPECT_THROW(LeakageEstimator(nl, sharedLibrary(), options), Error);
}

TEST(EstimatorTest, RejectsWrongSourceCount) {
  const logic::LogicNetlist nl = logic::c17();  // 5 sources
  const LeakageEstimator est(nl, sharedLibrary());
  EXPECT_EQ(est.sourceCount(), 5u);
  try {
    est.estimate({false, false, false});
    FAIL() << "expected nanoleak::Error";
  } catch (const Error& error) {
    // The message names the expected and the offending count.
    EXPECT_NE(std::string(error.what()).find("5"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("3"), std::string::npos);
  }
}

TEST(EstimatorTest, NoLoadingModeSumsIsolatedNominals) {
  const logic::LogicNetlist nl = logic::inverterChain(5);
  EstimatorOptions options;
  options.with_loading = false;
  const LeakageEstimator est(nl, sharedLibrary(), options);
  const EstimateResult r = est.estimate({false});
  const VectorTable& t0 = sharedLibrary().table(gates::GateKind::kInv, 0);
  const VectorTable& t1 = sharedLibrary().table(gates::GateKind::kInv, 1);
  // Chain input 0: vectors alternate 0,1,0,1,0.
  const double expected = 3 * t0.isolated_nominal.total() +
                          2 * t1.isolated_nominal.total();
  EXPECT_NEAR(r.total.total(), expected, 1e-12);
}

TEST(EstimatorTest, LoadingRaisesChainLeakage) {
  const logic::LogicNetlist nl = logic::inverterChain(16);
  const LeakageEstimator with(nl, sharedLibrary());
  EstimatorOptions off;
  off.with_loading = false;
  const LeakageEstimator without(nl, sharedLibrary(), off);
  const double w = with.estimate({false}).total.total();
  const double wo = without.estimate({false}).total.total();
  // Paper Fig. 12b territory: a few percent increase.
  EXPECT_GT(w, 1.01 * wo);
  EXPECT_LT(w, 1.20 * wo);
}

TEST(EstimatorTest, PrimaryInputNetsCarryNoLoading) {
  // A single gate fed only by PIs sees zero input loading.
  const logic::LogicNetlist nl = logic::c17();
  const LeakageEstimator est(nl, sharedLibrary());
  const EstimateResult r = est.estimate({false, false, false, false, false});
  // c17: G10 (gate 0) reads G1, G3 - both primary inputs.
  EXPECT_DOUBLE_EQ(r.per_gate[0].il, 0.0);
  // Its output net G10 feeds G22, so OL > 0.
  EXPECT_GT(r.per_gate[0].ol, 0.0);
}

TEST(EstimatorTest, FanoutRaisesOutputLoading) {
  const logic::LogicNetlist star = logic::fanoutStar(6);
  const LeakageEstimator est(star, sharedLibrary());
  const EstimateResult r = est.estimate({false});
  // Gate 0 is the driver: its output feeds 6 inverter pins.
  const double ol_driver = r.per_gate[0].ol;
  EXPECT_GT(ol_driver, 1e-6);  // 6 pins x hundreds of nA
  // Each leaf sees the other 5 pins as input loading.
  EXPECT_GT(r.per_gate[1].il, 0.8 * ol_driver * 5.0 / 6.0);
  EXPECT_LT(r.per_gate[1].il, 1.2 * ol_driver * 5.0 / 6.0);
}

TEST(EstimatorTest, IterativePropagationConverges) {
  const logic::LogicNetlist nl = logic::arrayMultiplier(4);
  EstimatorOptions one;
  one.propagation_iterations = 1;
  EstimatorOptions three;
  three.propagation_iterations = 3;
  std::vector<bool> vec(8, true);
  const double l1 =
      LeakageEstimator(nl, sharedLibrary(), one).estimate(vec).total.total();
  const double l3 =
      LeakageEstimator(nl, sharedLibrary(), three).estimate(vec).total.total();
  // The paper: propagation beyond one level is negligible (< 1 % here).
  EXPECT_NEAR(l1, l3, 0.01 * l1);
  EXPECT_NE(l1, l3);  // but not bit-identical - it did something
}

TEST(EstimatorTest, DffBoundariesContributeLoading) {
  logic::LogicNetlist nl;
  const logic::NetId in = nl.addNet("in");
  nl.markPrimaryInput(in);
  const logic::NetId mid = nl.addNet("mid");
  const logic::NetId q = nl.addNet("q");
  const logic::NetId out = nl.addNet("out");
  nl.addGate(gates::GateKind::kInv, {in}, mid);
  nl.addDff(mid, q);
  nl.addGate(gates::GateKind::kInv, {q}, out);
  nl.markPrimaryOutput(out);
  const LeakageEstimator est(nl, sharedLibrary());
  const EstimateResult r = est.estimate({false, true});
  // Gate 0 drives net "mid" which feeds only the DFF D pin: OL > 0.
  EXPECT_GT(r.per_gate[0].ol, 0.0);
  // Gate 1 reads the DFF output net: it is gate-loadable (non-PI), but no
  // other pins sit on it, so IL == 0.
  EXPECT_DOUBLE_EQ(r.per_gate[1].il, 0.0);
}

TEST(EstimatorTest, PerGateEstimatesSumToTotal) {
  const logic::LogicNetlist nl = logic::alu8();
  const LeakageEstimator est(nl, sharedLibrary());
  Rng rng(11);
  const EstimateResult r = est.estimate(logic::randomPattern(19, rng));
  device::LeakageBreakdown sum;
  for (const GateEstimate& g : r.per_gate) {
    sum += g.leakage;
  }
  EXPECT_NEAR(sum.total(), r.total.total(), 1e-12);
}

TEST(EstimatorTest, DeterministicForFixedVector) {
  const logic::LogicNetlist nl = logic::arrayMultiplier(4);
  const LeakageEstimator est(nl, sharedLibrary());
  std::vector<bool> vec(8, false);
  vec[3] = true;
  const double a = est.estimate(vec).total.total();
  const double b = est.estimate(vec).total.total();
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace nanoleak::core
