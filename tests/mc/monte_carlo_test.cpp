#include "mc/monte_carlo.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/statistics.h"

namespace nanoleak::mc {
namespace {

MonteCarloEngine makeEngine(VariationSigmas sigmas = VariationSigmas{}) {
  return MonteCarloEngine(device::defaultTechnology(), sigmas,
                          McFixtureConfig{});
}

TEST(MonteCarloTest, RejectsBadConfig) {
  McFixtureConfig config;
  config.kind = gates::GateKind::kNand2;
  config.input_vector = {true};  // arity mismatch
  EXPECT_THROW(MonteCarloEngine(device::defaultTechnology(),
                                VariationSigmas{}, config),
               Error);
  config.input_vector = {true, false};
  config.input_loads = -1;
  EXPECT_THROW(MonteCarloEngine(device::defaultTechnology(),
                                VariationSigmas{}, config),
               Error);
}

TEST(MonteCarloTest, CompiledFixturesMatchLegacyRebuildPerTrial) {
  // Same trials through both paths: the compiled fixtures re-bind
  // variations/VDD and warm-start, the legacy path rebuilds and
  // cold-starts. Converged operating points must agree within solver
  // tolerance on every sample.
  MonteCarloEngine compiled = makeEngine();
  MonteCarloEngine legacy = makeEngine();
  legacy.setUseCompiledFixtures(false);
  ASSERT_TRUE(compiled.useCompiledFixtures());
  ASSERT_FALSE(legacy.useCompiledFixtures());

  const std::uint64_t seed = 2024;
  for (std::size_t index : {0u, 3u, 11u}) {
    const McSample a = compiled.runSample(seed, index);
    const McSample b = legacy.runSample(seed, index);
    EXPECT_NEAR(a.with_loading.total(), b.with_loading.total(),
                1e-6 * b.with_loading.total())
        << "sample " << index;
    EXPECT_NEAR(a.without_loading.total(), b.without_loading.total(),
                1e-6 * b.without_loading.total())
        << "sample " << index;
    EXPECT_NEAR(a.with_loading.subthreshold, b.with_loading.subthreshold,
                1e-6 * b.with_loading.total());
    EXPECT_NEAR(a.with_loading.gate, b.with_loading.gate,
                1e-6 * b.with_loading.total());
    EXPECT_NEAR(a.with_loading.btbt, b.with_loading.btbt,
                1e-6 * b.with_loading.total());
  }
}

TEST(MonteCarloTest, BatchedRunMatchesScalarPerTrialPath) {
  // The lane-parallel runBatched population (the default) agrees with the
  // per-trial scalar path on every sample, including the partial trailing
  // lane group (7 is not a multiple of any SIMD width in use).
  MonteCarloEngine batched = makeEngine();
  MonteCarloEngine scalar = makeEngine();
  scalar.setUseBatchedSolves(false);
  ASSERT_TRUE(batched.useBatchedSolves());

  const std::uint64_t seed = 20050307;
  const std::size_t samples = 7;
  const auto a = batched.runBatched(samples, seed);
  const auto b = scalar.runBatched(samples, seed);
  ASSERT_EQ(a.size(), samples);
  ASSERT_EQ(b.size(), samples);
  for (std::size_t i = 0; i < samples; ++i) {
    EXPECT_NEAR(a[i].with_loading.total(), b[i].with_loading.total(),
                1e-6 * b[i].with_loading.total())
        << "trial " << i;
    EXPECT_NEAR(a[i].without_loading.total(), b[i].without_loading.total(),
                1e-6 * b[i].without_loading.total())
        << "trial " << i;
    EXPECT_NEAR(a[i].with_loading.subthreshold,
                b[i].with_loading.subthreshold,
                1e-6 * b[i].with_loading.total());
    EXPECT_NEAR(a[i].with_loading.gate, b[i].with_loading.gate,
                1e-6 * b[i].with_loading.total());
    EXPECT_NEAR(a[i].with_loading.btbt, b[i].with_loading.btbt,
                1e-6 * b[i].with_loading.total());
  }
}

TEST(MonteCarloTest, DeterministicForSeed) {
  const MonteCarloEngine engine = makeEngine();
  const auto a = engine.run(10, 77);
  const auto b = engine.run(10, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].with_loading.total(), b[i].with_loading.total());
    EXPECT_DOUBLE_EQ(a[i].without_loading.total(),
                     b[i].without_loading.total());
  }
}

TEST(MonteCarloTest, ZeroSigmasCollapseToNominal) {
  VariationSigmas zero;
  zero.sigma_l = 0.0;
  zero.sigma_tox = 0.0;
  zero.sigma_vth_inter = 0.0;
  zero.sigma_vth_intra = 0.0;
  zero.sigma_vdd = 0.0;
  const MonteCarloEngine engine = makeEngine(zero);
  const auto samples = engine.run(5, 3);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].with_loading.total(),
                     samples[0].with_loading.total());
  }
  // With no variation, loading still shifts the leakage (input loading of
  // 6 inverters raises the subthreshold component).
  EXPECT_GT(samples[0].with_loading.subthreshold,
            samples[0].without_loading.subthreshold);
}

TEST(MonteCarloTest, Fig10LoadingShiftsSubthresholdRight) {
  const MonteCarloEngine engine = makeEngine();
  const auto samples = engine.run(300, 11);
  RunningStats sub_with;
  RunningStats sub_without;
  RunningStats gate_with;
  RunningStats gate_without;
  for (const McSample& s : samples) {
    sub_with.add(s.with_loading.subthreshold);
    sub_without.add(s.without_loading.subthreshold);
    gate_with.add(s.with_loading.gate);
    gate_without.add(s.without_loading.gate);
  }
  // Input loading of six inverters raises the mean subthreshold leakage...
  EXPECT_GT(sub_with.mean(), 1.05 * sub_without.mean());
  // ...while the gate component moves slightly the other way.
  EXPECT_LT(gate_with.mean(), gate_without.mean());
}

TEST(MonteCarloTest, Fig11LoadingWidensTheSpread) {
  // Paper Fig. 11: loading raises the standard deviation of the total
  // leakage considerably more than its mean (the paper's sigma_VDD =
  // 333 mV makes the tunneling loading cause strongly sample-dependent).
  const MonteCarloEngine engine = makeEngine();
  const auto samples = engine.run(400, 13);
  const McSummary summary = MonteCarloEngine::summarizeTotals(samples);
  EXPECT_GT(summary.mean_shift_pct, 0.0);
  EXPECT_GT(summary.std_shift_pct, 1.15 * summary.mean_shift_pct);
  EXPECT_GT(summary.max_with, summary.max_without);
}

TEST(MonteCarloTest, SpreadShiftExceedsMeanShiftAcrossSigmas) {
  for (double sigma_inter : {30e-3, 50e-3}) {
    VariationSigmas sigmas;
    sigmas.sigma_vth_inter = sigma_inter;
    const auto samples = makeEngine(sigmas).run(300, 17);
    const McSummary summary = MonteCarloEngine::summarizeTotals(samples);
    EXPECT_GT(summary.std_shift_pct, summary.mean_shift_pct)
        << "sigma_vt_inter=" << sigma_inter;
  }
}

TEST(MonteCarloTest, SummaryOfEmptyRunIsZero) {
  const McSummary summary = MonteCarloEngine::summarizeTotals({});
  EXPECT_DOUBLE_EQ(summary.mean_with, 0.0);
  EXPECT_DOUBLE_EQ(summary.std_shift_pct, 0.0);
}

}  // namespace
}  // namespace nanoleak::mc
