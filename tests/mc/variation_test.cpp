#include "mc/variation.h"

#include <gtest/gtest.h>

#include "util/statistics.h"

namespace nanoleak::mc {
namespace {

TEST(VariationSamplerTest, DeterministicForSeed) {
  VariationSampler a(VariationSigmas{}, 99);
  VariationSampler b(VariationSigmas{}, 99);
  for (int i = 0; i < 10; ++i) {
    const DieSample da = a.sampleDie();
    const DieSample db = b.sampleDie();
    EXPECT_DOUBLE_EQ(da.delta_vth_inter, db.delta_vth_inter);
    EXPECT_DOUBLE_EQ(da.delta_vdd, db.delta_vdd);
    const auto va = a.sampleDevice(da);
    const auto vb = b.sampleDevice(db);
    EXPECT_DOUBLE_EQ(va.delta_vth, vb.delta_vth);
    EXPECT_DOUBLE_EQ(va.delta_length, vb.delta_length);
  }
}

TEST(VariationSamplerTest, SigmasAreRespected) {
  VariationSigmas sigmas;
  sigmas.sigma_l = 2e-9;
  sigmas.sigma_tox = 0.67e-10;
  sigmas.sigma_vth_inter = 30e-3;
  sigmas.sigma_vth_intra = 30e-3;
  sigmas.sigma_vdd = 33.3e-3;
  VariationSampler sampler(sigmas, 1);
  RunningStats l_stats;
  RunningStats tox_stats;
  RunningStats vth_stats;
  RunningStats vdd_stats;
  for (int i = 0; i < 20000; ++i) {
    const DieSample die = sampler.sampleDie();
    vdd_stats.add(die.delta_vdd);
    const auto dev = sampler.sampleDevice(die);
    l_stats.add(dev.delta_length);
    tox_stats.add(dev.delta_tox);
    vth_stats.add(dev.delta_vth);
  }
  EXPECT_NEAR(l_stats.stddev(), 2e-9, 0.1e-9);
  EXPECT_NEAR(tox_stats.stddev(), 0.67e-10, 0.05e-10);
  EXPECT_NEAR(vdd_stats.stddev(), 33.3e-3, 2e-3);
  // Vth combines inter + intra in quadrature: sqrt(30^2 + 30^2) = 42.4 mV.
  EXPECT_NEAR(vth_stats.stddev(), 42.4e-3, 3e-3);
  EXPECT_NEAR(l_stats.mean(), 0.0, 0.1e-9);
  EXPECT_NEAR(vth_stats.mean(), 0.0, 2e-3);
}

TEST(VariationSamplerTest, InterDieComponentIsSharedWithinDie) {
  VariationSampler sampler(VariationSigmas{}, 5);
  const DieSample die = sampler.sampleDie();
  const auto d1 = sampler.sampleDevice(die);
  const auto d2 = sampler.sampleDevice(die);
  // Device deltas differ (intra), but both contain the same inter shift:
  // their difference removes it, their average approaches it over many
  // draws.
  EXPECT_NE(d1.delta_vth, d2.delta_vth);
  RunningStats mean_vth;
  for (int i = 0; i < 20000; ++i) {
    mean_vth.add(sampler.sampleDevice(die).delta_vth);
  }
  EXPECT_NEAR(mean_vth.mean(), die.delta_vth_inter, 1e-3);
}

}  // namespace
}  // namespace nanoleak::mc
