#include "thermal/thermal_characterizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/characterizer.h"
#include "core/loading_fixture.h"
#include "util/error.h"

namespace nanoleak::thermal {
namespace {

core::CharacterizationOptions quickOptions() {
  core::CharacterizationOptions options;
  options.loading_grid = {0.0, 1.0e-6, 3.0e-6};
  return options;
}

std::vector<double> testTemps() { return {253.0, 300.0, 363.0}; }

void expectBitIdentical(const core::VectorTable& a,
                        const core::VectorTable& b) {
  EXPECT_EQ(a.subthreshold.values(), b.subthreshold.values());
  EXPECT_EQ(a.gate.values(), b.gate.values());
  EXPECT_EQ(a.btbt.values(), b.btbt.values());
  EXPECT_EQ(a.pin_current, b.pin_current);
  EXPECT_EQ(a.nominal.subthreshold, b.nominal.subthreshold);
  EXPECT_EQ(a.nominal.gate, b.nominal.gate);
  EXPECT_EQ(a.nominal.btbt, b.nominal.btbt);
  EXPECT_EQ(a.isolated_nominal.subthreshold, b.isolated_nominal.subthreshold);
  EXPECT_EQ(a.isolated_nominal.gate, b.isolated_nominal.gate);
  EXPECT_EQ(a.isolated_nominal.btbt, b.isolated_nominal.btbt);
  ASSERT_EQ(a.pin_current_grid.size(), b.pin_current_grid.size());
  for (std::size_t pin = 0; pin < a.pin_current_grid.size(); ++pin) {
    EXPECT_EQ(a.pin_current_grid[pin].values(),
              b.pin_current_grid[pin].values());
  }
}

double maxRelDiff(const core::VectorTable& a, const core::VectorTable& b) {
  double worst = 0.0;
  auto diff = [&](const std::vector<double>& x,
                  const std::vector<double>& y) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double denom = std::max({std::abs(x[i]), std::abs(y[i]), 1e-30});
      worst = std::max(worst, std::abs(x[i] - y[i]) / denom);
    }
  };
  diff(a.subthreshold.values(), b.subthreshold.values());
  diff(a.gate.values(), b.gate.values());
  diff(a.btbt.values(), b.btbt.values());
  return worst;
}

TEST(ThermalGridTest, UniformInclusiveGrid) {
  const ThermalGrid grid{233.0, 398.0, 4};
  const std::vector<double> temps = grid.temperatures();
  ASSERT_EQ(temps.size(), 4u);
  EXPECT_DOUBLE_EQ(temps.front(), 233.0);
  EXPECT_DOUBLE_EQ(temps.back(), 398.0);
  EXPECT_DOUBLE_EQ(temps[1], 233.0 + 165.0 / 3.0);
  for (std::size_t i = 1; i < temps.size(); ++i) {
    EXPECT_GT(temps[i], temps[i - 1]);
  }
}

TEST(ThermalGridTest, SinglePointAndValidation) {
  EXPECT_EQ(ThermalGrid({300.0, 300.0, 1}).temperatures(),
            std::vector<double>{300.0});
  EXPECT_THROW(ThermalGrid({300.0, 300.0, 2}).temperatures(), Error);
  EXPECT_THROW(ThermalGrid({300.0, 250.0, 3}).temperatures(), Error);
  EXPECT_THROW(ThermalGrid({300.0, 350.0, 0}).temperatures(), Error);
}

// The DeviceCoeffs re-bind-at-T contract, fixture level: re-binding a
// fixture to a new temperature and solving cold is bit-identical to a
// fixture freshly constructed at that temperature.
TEST(ThermalCharacterizerTest, FixtureTemperatureRebindMatchesFreshBuild) {
  device::Technology tech = device::defaultTechnology();
  for (double temperature_k : {253.0, 363.0, 398.0}) {
    core::LoadingFixture rebound(gates::GateKind::kNand2, {true, false},
                                 tech);
    // Solve once at the construction temperature so the kernel exists and
    // carries 300 K coefficients before the re-bind.
    rebound.setInputLoading(1.0e-6);
    rebound.setOutputLoading(-0.5e-6);
    (void)rebound.solveCompiled();
    rebound.rebindTemperature(temperature_k);

    device::Technology tech_t = tech;
    tech_t.temperature_k = temperature_k;
    core::LoadingFixture fresh(gates::GateKind::kNand2, {true, false},
                               tech_t);
    fresh.setInputLoading(1.0e-6);
    fresh.setOutputLoading(-0.5e-6);

    const core::FixtureResult a = rebound.solveCompiled();
    const core::FixtureResult b = fresh.solveCompiled();
    EXPECT_EQ(a.leakage.subthreshold, b.leakage.subthreshold);
    EXPECT_EQ(a.leakage.gate, b.leakage.gate);
    EXPECT_EQ(a.leakage.btbt, b.leakage.btbt);
    EXPECT_EQ(a.voltages, b.voltages);
    EXPECT_EQ(a.pin_currents_into_net, b.pin_currents_into_net);
  }
}

// Mode::kCold over the grid is bit-identical to a fresh per-temperature
// Characterizer on the compiled cold path - temperature re-binding alone
// never changes a bit.
TEST(ThermalCharacterizerTest, ColdModeBitIdenticalToFreshPerTemperature) {
  const device::Technology base = device::defaultTechnology();
  const ThermalCharacterizer thermal(base, quickOptions(),
                                     ThermalCharacterizer::Mode::kCold);
  for (gates::GateKind kind :
       {gates::GateKind::kInv, gates::GateKind::kNor2}) {
    const auto per_t = thermal.characterizeKind(kind, testTemps());
    ASSERT_EQ(per_t.size(), testTemps().size());
    for (std::size_t t = 0; t < testTemps().size(); ++t) {
      device::Technology tech = base;
      tech.temperature_k = testTemps()[t];
      core::CharacterizationOptions options = quickOptions();
      options.solver_path =
          core::CharacterizationOptions::SolverPath::kCompiled;
      const auto fresh =
          core::Characterizer(tech, options).characterizeKind(kind);
      ASSERT_EQ(per_t[t].size(), fresh.size());
      for (std::size_t v = 0; v < fresh.size(); ++v) {
        expectBitIdentical(per_t[t][v], fresh[v]);
      }
    }
  }
}

// Mode::kWarmStart agrees with the cold reference within solver
// tolerance at every temperature and flavour.
TEST(ThermalCharacterizerTest, WarmStartWithinSolverTolerance) {
  for (const device::Technology& base :
       {device::defaultTechnology(), device::gateDominatedTechnology(),
        device::btbtDominatedTechnology()}) {
    const ThermalCharacterizer cold(base, quickOptions(),
                                    ThermalCharacterizer::Mode::kCold);
    const ThermalCharacterizer warm(base, quickOptions(),
                                    ThermalCharacterizer::Mode::kWarmStart);
    const auto cold_tables =
        cold.characterizeKind(gates::GateKind::kNand2, testTemps());
    const auto warm_tables =
        warm.characterizeKind(gates::GateKind::kNand2, testTemps());
    for (std::size_t t = 0; t < cold_tables.size(); ++t) {
      for (std::size_t v = 0; v < cold_tables[t].size(); ++v) {
        EXPECT_LT(maxRelDiff(cold_tables[t][v], warm_tables[t][v]), 1e-6)
            << "flavour " << base.nmos.name << " T " << testTemps()[t];
      }
    }
  }
}

// Mode::kBatched (the constructor default) solves lane groups of adjacent
// temperatures in SIMD lockstep and agrees with the cold reference at
// every temperature. Six temperatures exercise a full lane group plus a
// partial trailing one on 4-lane backends.
TEST(ThermalCharacterizerTest, BatchedModeMatchesColdWithinTolerance) {
  const device::Technology base = device::defaultTechnology();
  EXPECT_EQ(ThermalCharacterizer(base, quickOptions()).mode(),
            ThermalCharacterizer::Mode::kBatched);
  const ThermalCharacterizer cold(base, quickOptions(),
                                  ThermalCharacterizer::Mode::kCold);
  const ThermalCharacterizer batched(base, quickOptions(),
                                     ThermalCharacterizer::Mode::kBatched);
  const std::vector<double> temps = {233.0, 263.0, 293.0,
                                     323.0, 353.0, 398.0};
  for (gates::GateKind kind :
       {gates::GateKind::kInv, gates::GateKind::kNand2}) {
    const auto cold_tables = cold.characterizeKind(kind, temps);
    const auto batched_tables = batched.characterizeKind(kind, temps);
    ASSERT_EQ(batched_tables.size(), cold_tables.size());
    for (std::size_t t = 0; t < cold_tables.size(); ++t) {
      ASSERT_EQ(batched_tables[t].size(), cold_tables[t].size());
      for (std::size_t v = 0; v < cold_tables[t].size(); ++v) {
        EXPECT_LT(maxRelDiff(cold_tables[t][v], batched_tables[t][v]), 1e-6)
            << "T " << temps[t] << " vec " << v;
        // The isolated reference is solver-free, hence exact per lane
        // temperature.
        EXPECT_EQ(batched_tables[t][v].isolated_nominal.total(),
                  cold_tables[t][v].isolated_nominal.total());
      }
    }
  }
}

TEST(ThermalCharacterizerTest, CharacterizeBuildsPerTemperatureLibraries) {
  const ThermalCharacterizer thermal(device::defaultTechnology(),
                                     quickOptions());
  const ThermalLibrarySet set = thermal.characterize(
      {gates::GateKind::kInv, gates::GateKind::kNand2},
      ThermalGrid{250.0, 350.0, 3});
  ASSERT_EQ(set.temperatures.size(), 3u);
  ASSERT_EQ(set.libraries.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_DOUBLE_EQ(set.libraries[t].meta().temperature_k,
                     set.temperatures[t]);
    EXPECT_TRUE(set.libraries[t].has(gates::GateKind::kInv));
    EXPECT_TRUE(set.libraries[t].has(gates::GateKind::kNand2));
  }
  // Leakage must grow with temperature for the subthreshold-dominated
  // flavour (nominal INV table, either vector).
  const double cold_total =
      set.libraries.front().table(gates::GateKind::kInv, 0).nominal.total();
  const double hot_total =
      set.libraries.back().table(gates::GateKind::kInv, 0).nominal.total();
  EXPECT_GT(hot_total, cold_total);
}

TEST(ThermalCharacterizerTest, RejectsMalformedInputs) {
  const ThermalCharacterizer thermal(device::defaultTechnology(),
                                     quickOptions());
  EXPECT_THROW(thermal.characterizeKind(gates::GateKind::kInv, {}), Error);
  EXPECT_THROW(
      thermal.characterizeKind(gates::GateKind::kInv, {300.0, 300.0}),
      Error);
  core::CharacterizationOptions bad;
  bad.loading_grid = {1.0e-6, 2.0e-6};  // must start at 0
  EXPECT_THROW(
      ThermalCharacterizer(device::defaultTechnology(), bad), Error);
}

}  // namespace
}  // namespace nanoleak::thermal
