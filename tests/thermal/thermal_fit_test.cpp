#include "thermal/thermal_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"

namespace nanoleak::thermal {
namespace {

std::vector<double> grid(double lo, double hi, std::size_t n) {
  std::vector<double> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  }
  return out;
}

TEST(ThermalFitTest, LinearDataIsRecoveredExactly) {
  const std::vector<double> t = grid(233.0, 398.0, 6);
  std::vector<double> y;
  for (double ti : t) {
    y.push_back(3.0e-9 + 2.0e-11 * ti);
  }
  const LinearFit fit = fitLinear(t, y);
  EXPECT_NEAR(fit.slope, 2.0e-11, 1e-20);
  EXPECT_NEAR(fit.offset, 3.0e-9, 1e-16);
  EXPECT_LT(fit.error.max_rel, 1e-12);
  EXPECT_LT(fit.error.rms_rel, 1e-12);
}

TEST(ThermalFitTest, ExponentialDataIsRecoveredExactly) {
  const std::vector<double> t = grid(233.0, 398.0, 6);
  std::vector<double> y;
  for (double ti : t) {
    y.push_back(1.0e-12 * std::exp(0.02 * ti));
  }
  const ExponentialFit fit = fitExponential(t, y);
  ASSERT_TRUE(fit.valid);
  EXPECT_NEAR(fit.rate, 0.02, 1e-10);
  EXPECT_LT(fit.error.max_rel, 1e-9);
}

TEST(ThermalFitTest, ExponentialRejectsNonPositiveSamples) {
  const std::vector<double> t = grid(233.0, 398.0, 4);
  const std::vector<double> y = {1.0, 0.0, 2.0, 3.0};
  const ExponentialFit fit = fitExponential(t, y);
  EXPECT_FALSE(fit.valid);
  EXPECT_EQ(fit.at(300.0), 0.0);
  // The zero model is 100% off every positive sample.
  EXPECT_NEAR(fit.error.max_rel, 1.0, 1e-12);
}

TEST(ThermalFitTest, PiecewiseFindsTheBreak) {
  // Two exact slopes meeting at t = 320: piecewise error ~0, linear not.
  std::vector<double> t = {240.0, 280.0, 320.0, 360.0, 400.0};
  std::vector<double> y;
  for (double ti : t) {
    y.push_back(ti <= 320.0 ? 1.0 + 0.01 * (ti - 240.0)
                            : 1.8 + 0.08 * (ti - 320.0));
  }
  const PiecewiseLinearFit fit = fitPiecewiseLinear(t, y);
  EXPECT_DOUBLE_EQ(fit.break_t, 320.0);
  EXPECT_LT(fit.error.max_rel, 1e-12);
  const LinearFit line = fitLinear(t, y);
  EXPECT_GT(line.error.max_rel, 0.05);
}

TEST(ThermalFitTest, SuperLinearDataPrefersExponential) {
  // The Sultan et al. shape: exponential growth makes the linear fit's
  // range-dependent error large while the exponential fit is exact.
  const std::vector<double> t = grid(233.0, 398.0, 8);
  std::vector<double> y;
  for (double ti : t) {
    y.push_back(5.0e-13 * std::exp(0.021 * ti));
  }
  const ModelComparison comparison = compareModels(t, y);
  EXPECT_EQ(comparison.bestModel(), "exponential");
  EXPECT_GT(comparison.linear.error.max_rel,
            10.0 * comparison.exponential.error.max_rel);
}

TEST(ThermalFitTest, CompareModelsDegradesPiecewiseBelowFourSamples) {
  const std::vector<double> t = {250.0, 300.0, 350.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const ModelComparison comparison = compareModels(t, y);
  EXPECT_DOUBLE_EQ(comparison.piecewise.error.max_rel,
                   comparison.linear.error.max_rel);
}

TEST(ThermalFitTest, InputValidation) {
  EXPECT_THROW(fitLinear({300.0}, {1.0}), Error);
  EXPECT_THROW(fitLinear({300.0, 310.0}, {1.0}), Error);
  EXPECT_THROW(fitLinear({300.0, 300.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(fitPiecewiseLinear({1, 2, 3}, {1, 2, 3}), Error);
}

TEST(ThermalFitTest, BestModelPrefersSimplerOnTies) {
  // Exactly linear data: all three fits are ~exact; "linear" must win.
  const std::vector<double> t = grid(233.0, 398.0, 6);
  std::vector<double> y;
  for (double ti : t) {
    y.push_back(2.0 + 0.5 * ti);
  }
  const ModelComparison comparison = compareModels(t, y);
  EXPECT_EQ(comparison.bestModel(), "linear");
}

}  // namespace
}  // namespace nanoleak::thermal
