#include "thermal/thermal_sweep.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "circuit/solver_stats.h"
#include "core/estimation_plan.h"
#include "scenario/cli.h"
#include "scenario/golden_file.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "util/error.h"

namespace nanoleak::thermal {
namespace {

core::CharacterizationOptions quickOptions() {
  core::CharacterizationOptions options;
  options.loading_grid = {0.0, 1.0e-6, 3.0e-6};
  return options;
}

ThermalSweepOptions quickSweepOptions() {
  ThermalSweepOptions options;
  options.grid = {253.0, 373.0, 4};
  options.characterization = quickOptions();
  return options;
}

std::vector<std::vector<bool>> patternsFor(
    const logic::LogicNetlist& netlist, std::size_t count) {
  return scenario::expandVectors(
      scenario::VectorPolicy::random(count, 20050307),
      netlist.sourceNets().size());
}

TEST(ThermalSweepEngineTest, CurveIsMonotonicForSubthresholdFlavour) {
  const ThermalSweepEngine engine(device::defaultTechnology(),
                                  quickSweepOptions());
  engine::BatchRunner runner;
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  const ThermalCurve curve =
      engine.run(netlist, patternsFor(netlist, 6), runner);

  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_EQ(curve.gates, netlist.gateCount());
  EXPECT_EQ(curve.vectors, 6u);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GT(curve.points[i].mean.total(),
              curve.points[i - 1].mean.total());
    EXPECT_GT(curve.points[i].mean.subthreshold,
              curve.points[i - 1].mean.subthreshold);
  }
  for (const ThermalPoint& point : curve.points) {
    EXPECT_LE(point.total_min, point.total_max);
    EXPECT_GT(point.mean.total(), 0.0);
  }
  // Subthreshold is strongly super-linear over 120 K: the exponential
  // model must beat the straight line decisively.
  EXPECT_GT(curve.subthreshold.linear.error.max_rel,
            2.0 * curve.subthreshold.exponential.error.max_rel);
}

TEST(ThermalSweepEngineTest, SeedsTheTableCachePerTemperature) {
  const ThermalSweepEngine engine(device::defaultTechnology(),
                                  quickSweepOptions());
  engine::BatchRunner runner;
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  const std::vector<gates::GateKind> kinds = core::estimationKinds(netlist);
  const ThermalCurve first =
      engine.run(netlist, patternsFor(netlist, 4), runner);

  // One insert per (temperature, kind); no characterization ran through
  // the cache itself.
  const engine::TableCache::Stats stats = runner.cache().stats();
  EXPECT_EQ(stats.inserts, 4u * kinds.size());
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(runner.cache().size(), 4u * kinds.size());

  // The seeded entries NEVER answer a plain Characterizer lookup:
  // continuation-produced tables are not bit-identical to what a cache
  // miss would compute, so an untagged library() at the same corner
  // must miss and characterize for real.
  const device::Technology tech = engine.technologyAt(253.0);
  (void)runner.cache().library(tech, kinds, quickOptions());
  EXPECT_EQ(runner.cache().stats().misses, kinds.size());

  // Running the same sweep again reuses the seeded entries bit-for-bit
  // instead of re-characterizing (node solves only come from the
  // untagged characterization above).
  const circuit::SolveStats before = circuit::solveStats();
  const ThermalCurve second =
      engine.run(netlist, patternsFor(netlist, 4), runner);
  EXPECT_EQ(circuit::solveStats().node_solves, before.node_solves);
  EXPECT_EQ(runner.cache().stats().inserts, 4u * kinds.size());
  ASSERT_EQ(second.points.size(), first.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(first.points[i].mean.subthreshold,
              second.points[i].mean.subthreshold);
    EXPECT_EQ(first.points[i].mean.total(), second.points[i].mean.total());
  }
}

TEST(ThermalSweepEngineTest, DifferentGridsNeverAliasCachedEntries) {
  // Warm-start tables depend on the WHOLE grid (each temperature
  // continuation-seeds from its predecessor), so two sweeps sharing one
  // temperature but differing elsewhere must never serve each other's
  // cached entries - otherwise a sweep's results would depend on which
  // sweep ran first on the shared runner.
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  const std::vector<std::vector<bool>> patterns = patternsFor(netlist, 4);
  ThermalSweepOptions a = quickSweepOptions();
  a.grid = {300.0, 400.0, 2};
  ThermalSweepOptions b = quickSweepOptions();
  b.grid = {200.0, 400.0, 2};  // shares 400 K with grid a
  const ThermalSweepEngine engine_a(device::defaultTechnology(), a);
  const ThermalSweepEngine engine_b(device::defaultTechnology(), b);

  engine::BatchRunner shared;
  (void)engine_a.run(netlist, patterns, shared);
  const ThermalCurve poisoned_first = engine_b.run(netlist, patterns, shared);
  const ThermalCurve poisoned_second =
      engine_b.run(netlist, patterns, shared);

  engine::BatchRunner fresh;
  const ThermalCurve clean = engine_b.run(netlist, patterns, fresh);

  ASSERT_EQ(poisoned_first.points.size(), clean.points.size());
  for (std::size_t i = 0; i < clean.points.size(); ++i) {
    EXPECT_EQ(poisoned_first.points[i].mean.total(),
              clean.points[i].mean.total());
    EXPECT_EQ(poisoned_second.points[i].mean.total(),
              clean.points[i].mean.total());
  }
}

TEST(ThermalSweepEngineTest, BitIdenticalAcrossThreadCounts) {
  const logic::LogicNetlist netlist = scenario::buildCircuit("rca4");
  const std::vector<std::vector<bool>> patterns = patternsFor(netlist, 6);
  const ThermalSweepEngine engine(device::defaultTechnology(),
                                  quickSweepOptions());

  engine::BatchRunner one(engine::BatchOptions{.threads = 1});
  engine::BatchRunner four(engine::BatchOptions{.threads = 4});
  const ThermalCurve a = engine.run(netlist, patterns, one);
  const ThermalCurve b = engine.run(netlist, patterns, four);

  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].mean.subthreshold, b.points[i].mean.subthreshold);
    EXPECT_EQ(a.points[i].mean.gate, b.points[i].mean.gate);
    EXPECT_EQ(a.points[i].mean.btbt, b.points[i].mean.btbt);
    EXPECT_EQ(a.points[i].total_min, b.points[i].total_min);
    EXPECT_EQ(a.points[i].total_max, b.points[i].total_max);
  }
  EXPECT_EQ(a.total.linear.slope, b.total.linear.slope);
  EXPECT_EQ(a.total.exponential.rate, b.total.exponential.rate);
  EXPECT_EQ(a.total.piecewise.break_t, b.total.piecewise.break_t);
}

TEST(ThermalSweepEngineTest, NoLoadingCurveDiffersFromLoaded) {
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  const std::vector<std::vector<bool>> patterns = patternsFor(netlist, 4);

  ThermalSweepOptions loaded = quickSweepOptions();
  ThermalSweepOptions unloaded = quickSweepOptions();
  unloaded.with_loading = false;
  engine::BatchRunner runner;
  const ThermalCurve a = ThermalSweepEngine(device::defaultTechnology(),
                                            loaded)
                             .run(netlist, patterns, runner);
  const ThermalCurve b = ThermalSweepEngine(device::defaultTechnology(),
                                            unloaded)
                             .run(netlist, patterns, runner);
  // The loading correction must actually change the curve.
  EXPECT_NE(a.points.front().mean.total(), b.points.front().mean.total());
}

TEST(ThermalSweepEngineTest, RejectsEmptyPatterns) {
  const ThermalSweepEngine engine(device::defaultTechnology(),
                                  quickSweepOptions());
  engine::BatchRunner runner;
  const logic::LogicNetlist netlist = scenario::buildCircuit("c17");
  EXPECT_THROW(engine.run(netlist, {}, runner), Error);
}

// --- scenario-layer integration -------------------------------------------

TEST(ThermalScenarioTest, RegistryHasThermalSuite) {
  const scenario::Registry registry = scenario::builtinRegistry();
  ASSERT_TRUE(registry.hasSuite("thermal"));
  for (const std::string& name : registry.suite("thermal")) {
    const scenario::Scenario& sc = registry.get(name);
    EXPECT_EQ(sc.method, scenario::Method::kThermalSweep);
    EXPECT_GE(sc.thermal.points, 2u);
    EXPECT_GT(sc.thermal.t_max_k, sc.thermal.t_min_k);
  }
}

TEST(ThermalScenarioTest, SuiteSerializationIsThreadCountInvariant) {
  const scenario::Registry registry = scenario::builtinRegistry();
  // One representative scenario keeps this fast; the committed golden
  // file pins the full suite.
  const std::string name = registry.suite("thermal").front();
  const scenario::SuiteResult one =
      scenario::runSuite(registry, name, {.threads = 1});
  const scenario::SuiteResult four =
      scenario::runSuite(registry, name, {.threads = 4});
  EXPECT_EQ(scenario::serializeSuite(one), scenario::serializeSuite(four));
}

TEST(ThermalScenarioTest, MethodRoundTripsThroughStrings) {
  EXPECT_STREQ(scenario::toString(scenario::Method::kThermalSweep),
               "thermal");
  EXPECT_EQ(scenario::methodFromString("thermal"),
            scenario::Method::kThermalSweep);
}

// --- CLI ------------------------------------------------------------------

int runCli(const std::vector<std::string>& args, std::string* out_text,
           std::string* err_text) {
  std::vector<const char*> argv;
  argv.push_back("nanoleak");
  for (const std::string& arg : args) {
    argv.push_back(arg.c_str());
  }
  std::ostringstream out;
  std::ostringstream err;
  const int code = scenario::cliMain(static_cast<int>(argv.size()),
                                     argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(ThermalCliTest, ThermalCommandPrintsCurveAndFits) {
  std::string out;
  std::string err;
  const int code = runCli({"thermal", "c17", "--points", "4", "--vectors",
                           "4", "--tmin", "260", "--tmax", "360"},
                          &out, &err);
  EXPECT_EQ(code, scenario::kExitOk) << err;
  EXPECT_NE(out.find("thermal sweep: c17 x d25s"), std::string::npos);
  EXPECT_NE(out.find("T [K]"), std::string::npos);
  EXPECT_NE(out.find("exponential"), std::string::npos);
  EXPECT_NE(out.find("best model per component"), std::string::npos);
}

TEST(ThermalCliTest, UsageErrors) {
  std::string err;
  EXPECT_EQ(runCli({"thermal"}, nullptr, &err), scenario::kExitUsage);
  EXPECT_EQ(runCli({"thermal", "c17", "--tmin", "400", "--tmax", "300"},
                   nullptr, &err),
            scenario::kExitUsage);
  // 0 K is not a physically evaluable corner (thermalVoltage(0) == 0).
  EXPECT_EQ(runCli({"thermal", "c17", "--tmin", "0", "--tmax", "300"},
                   nullptr, &err),
            scenario::kExitUsage);
  EXPECT_EQ(runCli({"thermal", "c17", "--golden", "x.json"}, nullptr, &err),
            scenario::kExitUsage);
  EXPECT_EQ(runCli({"thermal", "c17", "--format", "json"}, nullptr, &err),
            scenario::kExitUsage);
  // Unknown circuits map to a runtime failure, not a usage error.
  EXPECT_EQ(runCli({"thermal", "no_such_circuit", "--points", "2"}, nullptr,
                   &err),
            scenario::kExitFailure);
}

TEST(ThermalCliTest, ListShowsThermalScenariosWithRange) {
  std::string out;
  ASSERT_EQ(runCli({"list"}, &out, nullptr), scenario::kExitOk);
  EXPECT_NE(out.find("thermal/c17/d25s/233-398K"), std::string::npos);
  EXPECT_NE(out.find("233-398"), std::string::npos);
}

}  // namespace
}  // namespace nanoleak::thermal
