#!/usr/bin/env python3
"""Offline markdown link checker for the repo's documentation.

Verifies that every markdown link resolves:
  * relative file/directory links must exist on disk (relative to the
    file containing the link), and
  * intra-document anchors (#heading) must match a heading in the target
    document (GitHub-style slugs).

External links (http/https/mailto) are skipped - CI has no business
depending on the network - so this gate catches the rot that actually
happens in a repo: renamed files, moved docs, deleted sections.

Usage: tools/check_markdown_links.py FILE_OR_DIR [...]
Exit codes: 0 all links resolve, 1 broken links, 2 usage error.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path, cache):
    if path not in cache:
        # Strip fenced code blocks first: a '# comment' line inside a
        # bash fence is not a heading and must not register an anchor.
        text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(path, anchor_cache):
    text = path.read_text(encoding="utf-8")
    # Links inside fenced code blocks are examples, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    errors = []
    for regex in (LINK_RE, IMAGE_RE):
        for match in regex.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, anchor = target.partition("#")
            if base == "":
                dest = path  # pure in-document anchor
            else:
                dest = (path.parent / base).resolve()
                if not dest.exists():
                    errors.append(f"{path}: broken link '{target}' "
                                  f"(no such file: {base})")
                    continue
            if anchor and dest.suffix == ".md":
                if github_slug(anchor) not in anchors_of(dest, anchor_cache):
                    errors.append(f"{path}: broken anchor '{target}' "
                                  f"(no heading '#{anchor}' in {dest.name})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"error: no such file or directory: {arg}", file=sys.stderr)
            return 2
    anchor_cache = {}
    errors = []
    for f in files:
        errors.extend(check_file(f, anchor_cache))
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} broken link(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
