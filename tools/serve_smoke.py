#!/usr/bin/env python3
"""End-to-end smoke test for the `nanoleak serve` daemon.

Starts the daemon on a Unix socket, fires concurrent mixed client
traffic at it, and enforces the serve contract the unit tests pin at a
smaller scale:

  1. every `client run <target>` response is byte-identical to what a
     one-shot `nanoleak run <target> --format json` prints, at 1 and at
     N concurrent clients;
  2. repeated circuits hit the shared plan cache (plan_cache.hits > 0
     in the stats snapshot and in the --metrics-out artifact);
  3. a client-initiated shutdown drains the daemon, which exits 0 and
     leaves a parseable metrics artifact behind.

Usage: serve_smoke.py <nanoleak-binary> [--clients N] [--metrics-out F]

Exit code 0 on success, 1 with a diagnostic on any violated check.
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
import tempfile
import time

# Small registered scenarios that finish in milliseconds; REPEAT_TARGET
# is issued by every client so the plan compiles once and is then served
# from the shared cache.
REPEAT_TARGET = "estimate/c17/d25s/300K"
MIXED_TARGETS = [REPEAT_TARGET, "estimate/rca4/d25s/300K"]


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def client(binary, socket_path, *args, expect_ok=True):
    """Run one `nanoleak client` invocation and return its stdout bytes."""
    proc = subprocess.run(
        [binary, "client", *args, "--socket", socket_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    if expect_ok and proc.returncode != 0:
        fail(
            f"client {' '.join(args)} exited {proc.returncode}: "
            f"{proc.stderr.decode(errors='replace').strip()}"
        )
    return proc.stdout


def wait_for_ready(binary, socket_path, daemon, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            fail(f"daemon exited early with code {daemon.returncode}")
        probe = subprocess.run(
            [binary, "client", "ping", "--socket", socket_path],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if probe.returncode == 0:
            return
        time.sleep(0.1)
    fail(f"daemon did not answer ping within {timeout_s}s")


def one_client_session(binary, socket_path, index, reference):
    """One simulated tenant: a couple of mixed requests, then the
    repeated target whose bytes must match the one-shot reference."""
    mixed = MIXED_TARGETS[index % len(MIXED_TARGETS)]
    client(binary, socket_path, "run", mixed)
    client(binary, socket_path, "estimate", "c17", "--vectors", "4")
    payload = client(binary, socket_path, "run", REPEAT_TARGET)
    if payload != reference:
        fail(
            f"client {index}: run payload differs from one-shot "
            f"`nanoleak run {REPEAT_TARGET} --format json` "
            f"({len(payload)} vs {len(reference)} bytes)"
        )


def counters_from_stats(binary, socket_path):
    snapshot = json.loads(client(binary, socket_path, "stats").decode())
    if not isinstance(snapshot, dict) or "counters" not in snapshot:
        fail("stats payload is not a counters snapshot")
    return snapshot["counters"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the nanoleak binary")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="where the daemon writes its drain-time metrics artifact "
        "(default: a temp file, validated then discarded)",
    )
    args = parser.parse_args()
    binary = os.path.abspath(args.binary)

    # Unix socket paths are limited to ~100 bytes; keep the directory in
    # /tmp rather than a deep CI workspace path.
    workdir = tempfile.mkdtemp(prefix="nanoleak_smoke_", dir="/tmp")
    socket_path = os.path.join(workdir, "serve.sock")
    metrics_path = args.metrics_out or os.path.join(workdir, "metrics.json")

    reference = subprocess.run(
        [binary, "run", REPEAT_TARGET, "--format", "json"],
        stdout=subprocess.PIPE,
        check=True,
    ).stdout

    daemon = subprocess.Popen(
        [
            binary,
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "4",
            "--metrics-out",
            metrics_path,
        ]
    )
    try:
        wait_for_ready(binary, socket_path, daemon)

        # Single client first: the cold-cache bytes already match.
        cold = client(binary, socket_path, "run", REPEAT_TARGET)
        if cold != reference:
            fail("single-client run payload differs from the one-shot run")

        # Concurrent mixed traffic; every repeated-target response must
        # still be byte-identical to the same reference.
        with concurrent.futures.ThreadPoolExecutor(args.clients) as pool:
            futures = [
                pool.submit(
                    one_client_session, binary, socket_path, i, reference
                )
                for i in range(args.clients)
            ]
            for future in futures:
                future.result()

        counters = counters_from_stats(binary, socket_path)
        if counters.get("plan_cache.hits", 0) <= 0:
            fail(f"expected plan-cache hits under repeated traffic: {counters}")
        if counters.get("serve.errors", 0) != 0:
            fail(f"daemon reported request errors: {counters}")

        client(binary, socket_path, "shutdown")
        if daemon.wait(timeout=30) != 0:
            fail(f"daemon exited {daemon.returncode} after shutdown")
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)

    # Drain-time artifact: parseable, and it recorded the cache traffic.
    with open(metrics_path) as artifact_file:
        artifact = json.load(artifact_file)
    if artifact.get("format") != "nanoleak-metrics-v1":
        fail(f"unexpected metrics artifact format: {artifact.get('format')}")
    process_counters = artifact.get("process", {}).get("counters", {})
    if process_counters.get("plan_cache.hits", 0) <= 0:
        fail("metrics artifact shows no plan-cache hits")
    if process_counters.get("serve.responses", 0) <= 0:
        fail("metrics artifact shows no serve responses")

    print(
        "serve_smoke: OK "
        f"({args.clients} clients, "
        f"plan_cache.hits={process_counters['plan_cache.hits']}, "
        f"serve.responses={process_counters['serve.responses']})"
    )


if __name__ == "__main__":
    main()
