#!/usr/bin/env python3
"""Approximate the CI Doxygen gate without Doxygen installed.

Walks the documented API headers (src/core, src/engine, src/thermal,
src/obs, src/search, plus the individually listed batch-solver headers) and
reports public declarations that are not immediately preceded by a `///`
doc comment. This is a lightweight lexical check - the authoritative gate
is `doxygen Doxyfile` in CI (WARN_AS_ERROR = FAIL_ON_WARNINGS) - but it
catches the common case (a new public member without a doc comment)
before a push.

Usage: tools/check_doc_coverage.py [header-dir-or-file ...]
Exit codes: 0 all declarations documented, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

DEFAULT_DIRS = [
    "src/core",
    "src/engine",
    "src/thermal",
    "src/obs",
    "src/search",
    # The SIMD batch-solver API, documented file by file (their home
    # directories are otherwise internal). Keep in sync with Doxyfile INPUT.
    "src/util/simd.h",
    "src/circuit/batch_solver_kernel.h",
]

# Lines that open a documentable declaration. Deliberately coarse: we only
# look at access-public regions of headers and skip continuations.
DECL_RE = re.compile(
    r"^\s*(?:template\s*<.*>\s*)?"
    r"(class|struct|enum\s+class|enum|using\s+\w+\s*=|"
    r"(?:inline\s+|static\s+|constexpr\s+|explicit\s+|virtual\s+|friend\s+)*"
    r"[A-Za-z_][\w:<>,\s&*]*[\s&*])"
)
SKIP_RE = re.compile(
    r"^\s*(//|///|/\*|\*|#|\{|\}|$|public:|private:|protected:|namespace\b|"
    r"using namespace|typedef\b|friend\b|\)|:)"
)


def leading_token_is_documented(lines, i):
    j = i - 1
    while j >= 0 and (
        lines[j].strip() == "" or lines[j].strip().startswith("template")
    ):
        j -= 1
    if j < 0:
        return False
    stripped = lines[j].strip()
    return (
        stripped.startswith("///")
        or stripped.endswith("*/")
        or "///<" in lines[i]
    )


def public_regions(text):
    """Yield (line_number, line) pairs that sit in a public region.

    Tracks a real scope stack: every '{' pushes a scope (tagged 'class',
    'struct' or 'other'), every '}' pops one, and access specifiers
    rewrite the innermost class/struct scope - so a class ending in a
    private section never leaks its access level onto the declarations
    that follow it in the file.
    """
    scopes = []  # each: {"kind": "class"|"struct"|"namespace"|"body", ...}
    in_block_comment = False
    pending = None  # class/struct/namespace head seen, waiting for its '{'
    for number, line in enumerate(text.splitlines()):
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue
        if stripped.startswith("//"):
            continue
        access_match = re.match(r"^(public|private|protected)\s*:", stripped)
        if access_match:
            for scope in reversed(scopes):
                if scope["kind"] in ("class", "struct"):
                    scope["access"] = access_match.group(1)
                    break
        head = re.match(r"^(?:template\s*<[^>]*>\s*)?(class|struct)\s+\w", stripped)
        if head and ";" not in stripped.split("{")[0]:
            pending = head.group(1)
        elif stripped.startswith("namespace"):
            pending = "namespace"
        in_public = all(
            s["access"] in ("public", "struct")
            for s in scopes
            if s["kind"] in ("class", "struct")
        ) and not any(s["kind"] == "body" for s in scopes)
        if in_public:
            yield number, line
        code = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line.split("//")[0])
        for ch in code:
            if ch == "{":
                if pending == "namespace":
                    scopes.append({"kind": "namespace", "access": "public"})
                    pending = None
                elif pending is not None:
                    scopes.append({
                        "kind": pending,
                        "access": "struct" if pending == "struct" else "private",
                    })
                    pending = None
                else:
                    # Any other brace opens a function/enum/initializer
                    # body: its statements are not documentable entities.
                    scopes.append({"kind": "body", "access": "public"})
            elif ch == "}" and scopes:
                scopes.pop()
        if pending and (";" in code):
            pending = None  # forward declaration, no body


def check_file(path):
    text = path.read_text()
    lines = text.splitlines()
    findings = []
    in_public = dict(public_regions(text))
    for i, line in enumerate(lines):
        if i not in in_public:
            continue
        stripped = line.strip()
        if SKIP_RE.match(line) or not DECL_RE.match(line):
            continue
        # Continuation lines of a multi-line declaration are skipped: they
        # do not end a statement themselves and the opener was checked.
        if i > 0 and lines[i - 1].rstrip().endswith((",", "(", "&&", "||", "=")):
            continue
        # Macro-definition continuations (#define bodies spanning lines)
        # are preprocessor text, not declarations.
        if i > 0 and lines[i - 1].rstrip().endswith("\\"):
            continue
        # Forward declarations are not documentable entities.
        if re.match(r"^\s*(class|struct)\s+\w+\s*;\s*$", stripped):
            continue
        # First line of an inline function body (the opener - a signature
        # line ending in '{' - was already checked).
        prev = lines[i - 1].rstrip() if i > 0 else ""
        if prev.endswith("{") and "(" in prev:
            continue
        if re.match(r"^\s*(return|throw|if|for|while|switch|else)\b", stripped):
            continue
        if not leading_token_is_documented(lines, i):
            findings.append((i + 1, stripped))
    return findings


def main(argv):
    dirs = argv[1:] or DEFAULT_DIRS
    total = 0
    for entry in dirs:
        root = Path(entry)
        if root.is_file():
            paths = [root]
        elif root.is_dir():
            paths = sorted(root.glob("*.h"))
        else:
            print(f"error: not a directory or header: {entry}", file=sys.stderr)
            return 2
        for path in paths:
            for line_number, decl in check_file(path):
                print(f"{path}:{line_number}: undocumented: {decl}")
                total += 1
    if total:
        print(f"\n{total} undocumented declaration(s)", file=sys.stderr)
        return 1
    print("all public declarations documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
