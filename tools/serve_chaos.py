#!/usr/bin/env python3
"""Chaos harness for the `nanoleak serve` daemon.

Runs seeded fault schedules against live daemons and enforces the
resilience contract end to end (docs/RESILIENCE.md):

  1. socket chaos - deterministic read/write faults injected in the
     daemon (`serve.socket.read` / `serve.socket.write`); retrying
     clients all succeed, and every successful `client run` response is
     byte-identical to a one-shot `nanoleak run --format json`;
  2. cache chaos - injected plan/table build failures surface as
     structured `serve error:` responses from the documented taxonomy
     (never a crash or a hang), and the same request succeeds with the
     canonical bytes once the fault schedule moves on;
  3. deadlines - a Monte-Carlo request far larger than its deadline_ms
     budget answers `deadline_exceeded` within 2x the deadline;
  4. overload - with a starvation quota the second request of a tenant
     is rejected `overloaded`, and the daemon keeps serving others.

The daemon under test never crashes: every daemon must still answer a
ping after its chaos phase and exit 0 on a graceful shutdown. Fault
schedules use counter triggers (`every:`/`hit:`) plus a seeded request
shuffle, so a failing run reproduces with the same --seed.

Usage: serve_chaos.py <nanoleak-binary> [--quick] [--seed N]

Exit code 0 on success, 1 with a diagnostic on any violated check.
"""

import argparse
import concurrent.futures
import os
import random
import subprocess
import sys
import tempfile
import time

TARGET = "estimate/c17/d25s/300K"

# Statuses the daemon is allowed to answer when a request fails; any
# other failure shape (crash, hang, transport error after retries) is a
# chaos-harness failure. Keep in sync with docs/SERVE.md.
TAXONOMY = ("busy", "overloaded", "deadline_exceeded", "shutting_down",
            "error")


def fail(message):
    print(f"serve_chaos: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_client(binary, socket_path, *args):
    """One `nanoleak client` invocation -> (returncode, stdout, stderr)."""
    proc = subprocess.run(
        [binary, "client", *args, "--socket", socket_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    return proc.returncode, proc.stdout, proc.stderr.decode(errors="replace")


def classify_failure(stderr):
    """Returns the taxonomy status of a failed client call, or None when
    the failure is outside the documented taxonomy."""
    for status in TAXONOMY:
        if stderr.startswith(f"serve {status}:"):
            return status
    return None


class Daemon:
    """One daemon-under-chaos lifecycle: spawn with a fault schedule,
    wait until it answers ping, assert liveness + clean shutdown."""

    def __init__(self, binary, workdir, name, serve_args=(), faults=""):
        self.binary = binary
        self.socket_path = os.path.join(workdir, f"{name}.sock")
        env = os.environ.copy()
        env.pop("NANOLEAK_FAULTS", None)
        if faults:
            env["NANOLEAK_FAULTS"] = faults
        self.process = subprocess.Popen(
            [binary, "serve", "--socket", self.socket_path, *serve_args],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        self._wait_ready()

    def _wait_ready(self, timeout_s=20.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                fail(
                    f"daemon exited early with code {self.process.returncode}:"
                    f" {self.process.stderr.read().decode(errors='replace')}"
                )
            code, _, _ = run_client(self.binary, self.socket_path, "ping")
            if code == 0:
                return
            time.sleep(0.1)
        fail(f"daemon did not answer ping within {timeout_s}s")

    def shutdown(self, phase):
        """No-crash check: the daemon still answers, drains, and exits 0."""
        code, _, stderr = run_client(
            self.binary, self.socket_path, "ping", "--retries", "3",
            "--timeout-ms", "5000")
        if code != 0:
            fail(f"{phase}: daemon unresponsive after chaos: {stderr.strip()}")
        run_client(self.binary, self.socket_path, "shutdown", "--retries",
                   "3", "--timeout-ms", "5000")
        try:
            if self.process.wait(timeout=30) != 0:
                fail(f"{phase}: daemon exited "
                     f"{self.process.returncode} after shutdown")
        except subprocess.TimeoutExpired:
            self.process.kill()
            fail(f"{phase}: daemon failed to drain within 30s")

    def kill_if_alive(self):
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()


def socket_chaos(binary, workdir, reference, clients, requests, seed):
    """Phase 1: daemon-side read/write faults; retrying clients all
    recover and successful bytes stay canonical."""
    # every:N triggers cannot fire on two consecutive attempts of one
    # client, so a --retries budget of 4 always outlasts the schedule.
    daemon = Daemon(
        binary, workdir, "socket",
        serve_args=("--workers", "2"),
        faults="serve.socket.read=fail@every:5;"
               "serve.socket.write=fail@every:7",
    )
    try:
        def one_client(index):
            rng = random.Random(seed * 1000 + index)
            outcomes = []
            for _ in range(requests):
                time.sleep(rng.uniform(0.0, 0.01))
                code, payload, stderr = run_client(
                    binary, daemon.socket_path, "run", TARGET,
                    "--retries", "4", "--timeout-ms", "30000")
                if code != 0:
                    fail(f"socket chaos: client {index} failed despite "
                         f"retries: {stderr.strip()}")
                if payload != reference:
                    fail(f"socket chaos: client {index} payload differs "
                         f"from the one-shot run ({len(payload)} vs "
                         f"{len(reference)} bytes)")
                outcomes.append(code)
            return outcomes

        with concurrent.futures.ThreadPoolExecutor(clients) as pool:
            for future in [pool.submit(one_client, i) for i in range(clients)]:
                future.result()
        daemon.shutdown("socket chaos")
    finally:
        daemon.kill_if_alive()
    print(f"serve_chaos: socket chaos OK ({clients} clients x "
          f"{requests} requests through read/write faults)")


def cache_chaos(binary, workdir, reference):
    """Phase 2: injected cache-build failures are structured taxonomy
    errors, and the rebuilt entry serves canonical bytes."""
    daemon = Daemon(
        binary, workdir, "cache",
        faults="plan_cache.build=fail@hit:1;table_cache.build=fail@hit:2",
    )
    try:
        code, _, stderr = run_client(binary, daemon.socket_path, "run", TARGET)
        if code == 0:
            fail("cache chaos: first build unexpectedly survived the "
                 "injected fault")
        status = classify_failure(stderr)
        if status is None:
            fail(f"cache chaos: failure outside the documented taxonomy: "
             f"{stderr.strip()}")
        # The failed entry was erased, not poisoned: the same request
        # (which also re-runs the table build, hit 2) eventually
        # rebuilds and returns the canonical bytes.
        for attempt in range(3):
            code, payload, stderr = run_client(
                binary, daemon.socket_path, "run", TARGET)
            if code == 0:
                break
            if classify_failure(stderr) is None:
                fail(f"cache chaos: retry {attempt} failed outside the "
                     f"taxonomy: {stderr.strip()}")
        else:
            fail("cache chaos: request never recovered after the fault "
                 "schedule was spent")
        if payload != reference:
            fail("cache chaos: post-recovery payload differs from the "
                 "one-shot run")
        daemon.shutdown("cache chaos")
    finally:
        daemon.kill_if_alive()
    print(f"serve_chaos: cache chaos OK (injected build failure -> "
          f"`serve {status}`, recovery byte-identical)")


def deadline_chaos(binary, workdir):
    """Phase 3: an over-budget request answers deadline_exceeded within
    2x its deadline."""
    daemon = Daemon(binary, workdir, "deadline")
    try:
        deadline_ms = 750
        started = time.monotonic()
        code, _, stderr = run_client(
            binary, daemon.socket_path, "mc", "--samples", "200000",
            "--deadline-ms", str(deadline_ms))
        waited_ms = (time.monotonic() - started) * 1000.0
        if code == 0:
            fail("deadline chaos: a 200k-sample mc finished inside 750 ms "
                 "(raise --samples)")
        if classify_failure(stderr) != "deadline_exceeded":
            fail(f"deadline chaos: expected `serve deadline_exceeded:`, "
                 f"got: {stderr.strip()}")
        if waited_ms > 2 * deadline_ms:
            fail(f"deadline chaos: answer took {waited_ms:.0f} ms, over "
                 f"2x the {deadline_ms} ms deadline")
        # The abandoned request left the daemon healthy.
        code, _, stderr = run_client(
            binary, daemon.socket_path, "mc", "--samples", "16")
        if code != 0:
            fail(f"deadline chaos: follow-up mc failed: {stderr.strip()}")
        daemon.shutdown("deadline chaos")
    finally:
        daemon.kill_if_alive()
    print(f"serve_chaos: deadline chaos OK (deadline_exceeded in "
          f"{waited_ms:.0f} ms for a {deadline_ms} ms budget)")


def overload_chaos(binary, workdir, reference):
    """Phase 4: quota rejections are structured and tenant-scoped."""
    daemon = Daemon(
        binary, workdir, "overload",
        serve_args=("--quota-rps", "0.001", "--quota-burst", "1"),
    )
    try:
        code, payload, stderr = run_client(
            binary, daemon.socket_path, "run", TARGET, "--tenant", "team-a")
        if code != 0:
            fail(f"overload chaos: first request rejected: {stderr.strip()}")
        if payload != reference:
            fail("overload chaos: quota-admitted payload differs from the "
                 "one-shot run")
        code, _, stderr = run_client(
            binary, daemon.socket_path, "run", TARGET, "--tenant", "team-a")
        if code == 0 or classify_failure(stderr) != "overloaded":
            fail(f"overload chaos: expected `serve overloaded:` for the "
                 f"drained tenant, got: {stderr.strip()}")
        code, _, stderr = run_client(
            binary, daemon.socket_path, "run", TARGET, "--tenant", "team-b")
        if code != 0:
            fail(f"overload chaos: unrelated tenant was starved: "
                 f"{stderr.strip()}")
        daemon.shutdown("overload chaos")
    finally:
        daemon.kill_if_alive()
    print("serve_chaos: overload chaos OK (tenant-scoped `overloaded` "
          "rejections)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the nanoleak binary")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down schedules for CI smoke use")
    parser.add_argument("--seed", type=int, default=20050307,
                        help="seed for the client-side request shuffle")
    args = parser.parse_args()
    binary = os.path.abspath(args.binary)

    clients = 3 if args.quick else 8
    requests = 3 if args.quick else 10

    workdir = tempfile.mkdtemp(prefix="nanoleak_chaos_", dir="/tmp")
    reference = subprocess.run(
        [binary, "run", TARGET, "--format", "json"],
        stdout=subprocess.PIPE,
        check=True,
    ).stdout

    socket_chaos(binary, workdir, reference, clients, requests, args.seed)
    cache_chaos(binary, workdir, reference)
    deadline_chaos(binary, workdir)
    overload_chaos(binary, workdir, reference)
    print(f"serve_chaos: OK (seed={args.seed}, "
          f"{'quick' if args.quick else 'full'} schedules)")


if __name__ == "__main__":
    main()
