#!/usr/bin/env python3
"""Validate the observability artifacts the nanoleak CLI emits.

Checks the two files produced by `nanoleak run <suite> --metrics-out
m.json --trace-out t.json`:

* the metrics snapshot is a `nanoleak-metrics-v1` document: a process-wide
  registry snapshot (counters/gauges/histograms) plus one delta snapshot
  per scenario, and
* the trace is Chrome trace-event JSON that chrome://tracing and Perfetto
  will load: every event a complete ("ph": "X") event with name, pid 1,
  a positive integer tid, and non-negative ts/dur microseconds - and the
  spans on each thread nest strictly (RAII spans cannot partially
  overlap).

Whenever the SIMD batch-solver counters appear in a snapshot they are
cross-checked for consistency (lane solves >= batch solves, the lane
occupancy histogram accounts for every batch solve). With
--require-batch the process snapshot must additionally show at least one
batch solve - CI passes this after running the `batched` suite so a
regression that silently routes everything to the scalar path fails the
build.

CI runs this after the smoke-suite run; it is also handy locally.

Usage: tools/check_obs_artifacts.py [--require-batch] <metrics.json> <trace.json>
Exit codes: 0 both artifacts valid, 1 findings, 2 usage error.
"""

import json
import sys
from pathlib import Path

METRICS_FORMAT = "nanoleak-metrics-v1"


def check_snapshot(snap, where, findings):
    """Validates one registry snapshot (process-wide or per-scenario delta)."""
    if not isinstance(snap, dict):
        findings.append(f"{where}: snapshot is not an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            findings.append(f"{where}: missing '{section}'")
            continue
        if not isinstance(snap[section], dict):
            findings.append(f"{where}: '{section}' is not an object")
    for name, value in snap.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            findings.append(
                f"{where}: counter '{name}' is not a non-negative integer"
            )
    for name, hist in snap.get("histograms", {}).items():
        bounds = hist.get("bounds")
        buckets = hist.get("buckets")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            findings.append(f"{where}: histogram '{name}' missing bounds/buckets")
            continue
        if len(buckets) != len(bounds) + 1:
            findings.append(
                f"{where}: histogram '{name}' has {len(buckets)} buckets for "
                f"{len(bounds)} bounds (want bounds+1 including overflow)"
            )
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            findings.append(
                f"{where}: histogram '{name}' bounds are not strictly increasing"
            )


def check_batch_counters(snap, where, findings, require_batch=False):
    """Cross-checks the solver.batch_* metrics inside one snapshot."""
    counters = snap.get("counters", {}) if isinstance(snap, dict) else {}
    batch = counters.get("solver.batch_solves", 0)
    lanes = counters.get("solver.batch_lane_solves", 0)
    if require_batch and batch <= 0:
        findings.append(
            f"{where}: solver.batch_solves is {batch}, but --require-batch "
            f"expects the lane-parallel path to have run"
        )
    if batch > 0 and lanes < batch:
        findings.append(
            f"{where}: solver.batch_lane_solves ({lanes}) < "
            f"solver.batch_solves ({batch}); every batch carries >= 1 lane"
        )
    hist = snap.get("histograms", {}).get("solver.batch_lane_occupancy")
    if batch > 0:
        if not isinstance(hist, dict):
            findings.append(
                f"{where}: batch solves recorded but histogram "
                f"'solver.batch_lane_occupancy' is missing"
            )
        else:
            total = sum(hist.get("buckets", []))
            if total != batch:
                findings.append(
                    f"{where}: lane-occupancy histogram counts {total} "
                    f"batches, counter says {batch}"
                )


def check_metrics(doc, findings, require_batch=False):
    if doc.get("format") != METRICS_FORMAT:
        findings.append(
            f"metrics: format is {doc.get('format')!r}, want {METRICS_FORMAT!r}"
        )
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        findings.append("metrics: missing suite name")
    check_snapshot(doc.get("process"), "metrics process snapshot", findings)
    check_batch_counters(
        doc.get("process"), "metrics process snapshot", findings,
        require_batch=require_batch,
    )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list):
        findings.append("metrics: 'scenarios' is not an array")
        return
    for scenario in scenarios:
        name = scenario.get("name", "<unnamed>")
        if not isinstance(scenario.get("name"), str) or not scenario["name"]:
            findings.append("metrics: scenario without a name")
        wall = scenario.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            findings.append(f"metrics: scenario '{name}' wall_seconds invalid")
        solves = scenario.get("node_solves")
        if not isinstance(solves, int) or solves < 0:
            findings.append(f"metrics: scenario '{name}' node_solves invalid")
        check_snapshot(
            scenario.get("delta"), f"metrics scenario '{name}' delta", findings
        )
        check_batch_counters(
            scenario.get("delta"), f"metrics scenario '{name}' delta", findings
        )


def check_trace(doc, findings):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        findings.append("trace: 'traceEvents' is not an array")
        return
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        findings.append("trace: displayTimeUnit must be 'ms' or 'ns'")
    for i, event in enumerate(events):
        where = f"trace event {i}"
        if event.get("ph") != "X":
            findings.append(f"{where}: ph is {event.get('ph')!r}, want 'X'")
        if not isinstance(event.get("name"), str) or not event["name"]:
            findings.append(f"{where}: missing name")
        if event.get("pid") != 1:
            findings.append(f"{where}: pid is {event.get('pid')!r}, want 1")
        tid = event.get("tid")
        if not isinstance(tid, int) or tid < 1:
            findings.append(f"{where}: tid must be a positive integer")
        for field in ("ts", "dur"):
            value = event.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                findings.append(f"{where}: {field} must be non-negative")

    # Strict per-thread nesting: walk each thread's events in time order
    # with an interval stack; every span must fit entirely inside its
    # enclosing open span.
    by_tid = {}
    for event in events:
        if isinstance(event.get("tid"), int):
            by_tid.setdefault(event["tid"], []).append(event)
    for tid, thread_events in sorted(by_tid.items()):
        thread_events.sort(key=lambda e: (e.get("ts", 0), -e.get("dur", 0)))
        stack = []
        for event in thread_events:
            ts, dur = event.get("ts", 0), event.get("dur", 0)
            while stack and ts >= stack[-1][0] + stack[-1][1]:
                stack.pop()
            if stack and ts + dur > stack[-1][0] + stack[-1][1]:
                findings.append(
                    f"trace: span '{event.get('name')}' on tid {tid} "
                    f"overlaps its enclosing span instead of nesting"
                )
            stack.append((ts, dur))


def load(path, what, findings):
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        findings.append(f"{what}: cannot read {path}: {error}")
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        findings.append(f"{what}: {path} is not valid JSON: {error}")
        return None


def main(argv):
    args = list(argv[1:])
    require_batch = "--require-batch" in args
    args = [a for a in args if a != "--require-batch"]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    findings = []
    metrics = load(args[0], "metrics", findings)
    trace = load(args[1], "trace", findings)
    if metrics is not None:
        check_metrics(metrics, findings, require_batch=require_batch)
    if trace is not None:
        check_trace(trace, findings)
    if findings:
        for finding in findings:
            print(f"FAIL: {finding}")
        return 1
    n_events = len(trace.get("traceEvents", []))
    n_scenarios = len(metrics.get("scenarios", []))
    print(
        f"OK: {args[0]} ({n_scenarios} scenarios) and {args[1]} "
        f"({n_events} trace events) are valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
