// The `nanoleak` binary: scenario suites, golden recording, regression
// checking. All logic lives in scenario::cliMain so the test suite can
// exercise it in-process.
#include <iostream>

#include "scenario/cli.h"

int main(int argc, char** argv) {
  return nanoleak::scenario::cliMain(argc, argv, std::cout, std::cerr);
}
